//! The catalog and the thin execution driver.
//!
//! [`Database`] holds named, **versioned** relations in a
//! [`RelationStore`]; [`QuerySpec`] names the relations a query touches
//! plus its parameters. Execution is a pipeline: the driver pins a
//! [`DbSnapshot`] (one immutable version of every relation), the
//! [`Optimizer`] picks a [`Strategy`] from the pinned relations'
//! statistics, [`crate::plan::physical::compile`] lowers `(spec, strategy)`
//! into a [`PhysicalPlan`] operator holding snapshot handles, and the
//! operator runs under an [`ExecutionMode`] (serial, or block-partitioned
//! over the persistent worker pool). [`Database::execute`] is nothing but
//! that chain; independent queries run concurrently through
//! [`Database::execute_batch`], which pins **one** snapshot for the whole
//! batch and schedules *inter-query* tasks on the same [`WorkerPool`] the
//! operators use for *intra-operator* tasks — one shared queue, one global
//! thread budget, regardless of how the two layers nest.
//!
//! Writes go through [`Database::insert`] / [`Database::remove`] /
//! [`Database::update`] (or batched [`Database::ingest`]): each call
//! publishes a new relation version atomically. Relations may be spatially
//! sharded ([`crate::store::ShardConfig`]): ops are routed to the shard
//! they fall in, and when a **shard's** delta overlay outgrows the store's
//! compaction threshold a background rebuild of that shard alone is
//! scheduled on the same pool. Readers never block on either — they keep
//! their pinned snapshots.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use twoknn_geometry::{Point, PointId, Predicate};
use twoknn_index::{Metrics, SpatialIndex};

use crate::cq::{CqEngine, MaintenancePolicy, ResultDelta, SubscriptionId};
use crate::error::QueryError;
use crate::exec::{ExecutionMode, WorkerPool};
use crate::joins2::{ChainedJoinQuery, UnchainedJoinQuery};
use crate::obs::{
    AnalyzedQuery, Event, HistogramKind, MetricsReport, OpNode, PlanExplain, QueryTrace,
    RelationGauges,
};
use crate::output::{Pair, QueryOutput, Triplet};
use crate::plan::optimizer::Optimizer;
use crate::plan::physical::{compile, PhysicalPlan, Row};
use crate::plan::stats::RelationProfile;
use crate::plan::strategy::Strategy;
use crate::select::KnnSelectQuery;
use crate::select_join::{SelectInnerJoinQuery, SelectOuterJoinQuery};
use crate::selects2::TwoSelectsQuery;
use crate::store::{
    DbSnapshot, IndexConfig, RecoveryError, RelationSnapshot, RelationStore, StoreConfig,
    StoredIndex, WriteOp,
};

/// A named catalog of versioned, indexed relations.
pub struct Database {
    store: Arc<RelationStore>,
    optimizer: Optimizer,
    /// The worker pool batch execution **and** background compaction
    /// schedule on. Defaults to the process-wide shared pool, so batch-level
    /// query tasks, operator-level block tasks and store rebuild jobs share
    /// one queue and one thread budget.
    pool: Arc<WorkerPool>,
    /// The continuous-query engine, created lazily on the first
    /// subscription so databases that never subscribe pay nothing on the
    /// ingest path.
    cq: OnceLock<Arc<CqEngine>>,
}

impl Default for Database {
    fn default() -> Self {
        Self {
            store: Arc::new(RelationStore::default()),
            optimizer: Optimizer::default(),
            pool: Arc::clone(WorkerPool::global()),
            cq: OnceLock::new(),
        }
    }
}

/// A query over named relations in a [`Database`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// kNN-join with a kNN-select on the join's inner relation.
    SelectInnerOfJoin {
        /// Name of the outer relation (`E1`).
        outer: String,
        /// Name of the inner relation (`E2`).
        inner: String,
        /// Query parameters.
        query: SelectInnerJoinQuery,
    },
    /// kNN-join with a kNN-select on the join's outer relation.
    SelectOuterOfJoin {
        /// Name of the outer relation (`E1`).
        outer: String,
        /// Name of the inner relation (`E2`).
        inner: String,
        /// Query parameters.
        query: SelectOuterJoinQuery,
    },
    /// Two unchained kNN-joins `(A ⋈ B) ∩_B (C ⋈ B)`.
    UnchainedJoins {
        /// Name of relation `A`.
        a: String,
        /// Name of the shared inner relation `B`.
        b: String,
        /// Name of relation `C`.
        c: String,
        /// Query parameters.
        query: UnchainedJoinQuery,
    },
    /// Two chained kNN-joins `A → B → C`.
    ChainedJoins {
        /// Name of relation `A`.
        a: String,
        /// Name of relation `B`.
        b: String,
        /// Name of relation `C`.
        c: String,
        /// Query parameters.
        query: ChainedJoinQuery,
    },
    /// Two kNN-selects over one relation.
    TwoSelects {
        /// Name of the relation.
        relation: String,
        /// Query parameters.
        query: TwoSelectsQuery,
    },
    /// A single kNN-select `σ_{k,f}(E)` — the shape the textual front-end
    /// ([`Database::query`]) produces for one `KNN` predicate.
    KnnSelect {
        /// Name of the relation.
        relation: String,
        /// Query parameters.
        query: KnnSelectQuery,
    },
    /// A query with relational filters wrapped around an inner kNN query
    /// shape. Filters are placed per relation name: **pre-kNN** filters
    /// change what the kNN predicates see ("the k nearest *matching*
    /// points"), **post-kNN** filters only prune result rows. The placement
    /// is semantics-bearing (Section 3 of the paper), so
    /// [`crate::plan::compile`] rejects pre-filters on
    /// roles where the pushdown would change the answer.
    Filtered {
        /// The kNN query shape the filters wrap.
        spec: Box<QuerySpec>,
        /// The filters and their placement.
        filters: QueryFilters,
    },
}

/// Per-relation filter predicates of a [`QuerySpec::Filtered`] query, split
/// by placement relative to the kNN predicates.
///
/// Keys are relation names (as they appear in the wrapped spec). A name in
/// `pre` filters the relation *before* the kNN predicates run against it —
/// valid only on roles where the paper's pushdown argument holds (the
/// select/outer side, never a join's inner side). A name in `post` filters
/// the finished result rows by that relation's component.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryFilters {
    /// Filters applied before the kNN predicates (pushdown placement).
    pub pre: BTreeMap<String, Predicate>,
    /// Filters applied to the result rows (residual placement).
    pub post: BTreeMap<String, Predicate>,
}

impl QueryFilters {
    /// No filters in either placement.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds (ANDs onto) a pre-kNN filter for `relation`.
    pub fn pre(mut self, relation: impl Into<String>, predicate: Predicate) -> Self {
        let name = relation.into();
        let combined = match self.pre.remove(&name) {
            Some(existing) => existing.and(predicate),
            None => predicate,
        };
        self.pre.insert(name, combined);
        self
    }

    /// Adds (ANDs onto) a post-kNN filter for `relation`.
    pub fn post(mut self, relation: impl Into<String>, predicate: Predicate) -> Self {
        let name = relation.into();
        let combined = match self.post.remove(&name) {
            Some(existing) => existing.and(predicate),
            None => predicate,
        };
        self.post.insert(name, combined);
        self
    }

    /// True when neither placement holds any (non-trivial) filter.
    pub fn is_empty(&self) -> bool {
        self.pre.values().all(|p| matches!(p, Predicate::True))
            && self.post.values().all(|p| matches!(p, Predicate::True))
    }
}

impl QuerySpec {
    /// The names of the relations this query references, in role order
    /// (duplicates preserved when one relation plays several roles).
    pub fn relations(&self) -> Vec<&str> {
        match self {
            QuerySpec::SelectInnerOfJoin { outer, inner, .. }
            | QuerySpec::SelectOuterOfJoin { outer, inner, .. } => vec![outer, inner],
            QuerySpec::UnchainedJoins { a, b, c, .. } | QuerySpec::ChainedJoins { a, b, c, .. } => {
                vec![a, b, c]
            }
            QuerySpec::TwoSelects { relation, .. } | QuerySpec::KnnSelect { relation, .. } => {
                vec![relation]
            }
            QuerySpec::Filtered { spec, .. } => spec.relations(),
        }
    }

    /// Wraps this query in filters, producing a [`QuerySpec::Filtered`] —
    /// or returning `self` unchanged when `filters` is empty.
    pub fn with_filters(self, filters: QueryFilters) -> QuerySpec {
        if filters.is_empty() {
            self
        } else {
            QuerySpec::Filtered {
                spec: Box::new(self),
                filters,
            }
        }
    }
}

/// The result of executing a [`QuerySpec`], tagged by its row type, together
/// with the strategy that produced it.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// Pair-valued results (select + join queries).
    Pairs {
        /// The output rows and metrics.
        output: QueryOutput<Pair>,
        /// The strategy that was executed.
        strategy: Strategy,
    },
    /// Triplet-valued results (two-join queries).
    Triplets {
        /// The output rows and metrics.
        output: QueryOutput<Triplet>,
        /// The strategy that was executed.
        strategy: Strategy,
    },
    /// Point-valued results (two-select queries).
    Points {
        /// The output rows and metrics.
        output: QueryOutput<Point>,
        /// The strategy that was executed.
        strategy: Strategy,
    },
}

impl QueryResult {
    /// Number of result rows regardless of row type.
    pub fn num_rows(&self) -> usize {
        match self {
            QueryResult::Pairs { output, .. } => output.len(),
            QueryResult::Triplets { output, .. } => output.len(),
            QueryResult::Points { output, .. } => output.len(),
        }
    }

    /// The work metrics of the execution.
    pub fn metrics(&self) -> Metrics {
        match self {
            QueryResult::Pairs { output, .. } => output.metrics,
            QueryResult::Triplets { output, .. } => output.metrics,
            QueryResult::Points { output, .. } => output.metrics,
        }
    }

    /// The strategy that was executed.
    pub fn strategy(&self) -> Strategy {
        match self {
            QueryResult::Pairs { strategy, .. }
            | QueryResult::Triplets { strategy, .. }
            | QueryResult::Points { strategy, .. } => *strategy,
        }
    }

    /// The result rows, flattened into the typed [`Row`] form so generic
    /// drivers can consume every query shape through one type.
    pub fn rows(&self) -> Vec<Row> {
        match self {
            QueryResult::Pairs { output, .. } => {
                output.rows.iter().copied().map(Row::Pair).collect()
            }
            QueryResult::Triplets { output, .. } => {
                output.rows.iter().copied().map(Row::Triplet).collect()
            }
            QueryResult::Points { output, .. } => {
                output.rows.iter().copied().map(Row::Point).collect()
            }
        }
    }
}

impl Database {
    /// Creates an empty catalog with the default optimizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty catalog with a custom optimizer configuration.
    pub fn with_optimizer(optimizer: Optimizer) -> Self {
        Self {
            optimizer,
            ..Self::default()
        }
    }

    /// Creates an empty catalog whose batch execution runs on an explicit
    /// [`WorkerPool`] instead of the process-wide shared pool.
    ///
    /// Mostly useful for tests and benchmarks that need a pinned thread
    /// budget. Note that `Pooled`-mode *operator* execution resolves its
    /// pool dynamically: on this pool while running inside one of its batch
    /// tasks, on the global pool otherwise.
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        Self {
            pool,
            ..Self::default()
        }
    }

    /// Creates an empty catalog with explicit store tuning (e.g. a small
    /// compaction threshold for ingest-heavy tests).
    pub fn with_store_config(config: StoreConfig) -> Self {
        Self {
            store: Arc::new(RelationStore::new(config)),
            ..Self::default()
        }
    }

    /// Creates an empty catalog with both an explicit pool and explicit
    /// store tuning.
    pub fn with_pool_and_store_config(pool: Arc<WorkerPool>, config: StoreConfig) -> Self {
        Self {
            store: Arc::new(RelationStore::new(config)),
            pool,
            ..Self::default()
        }
    }

    /// Opens (or creates) a **durable** database rooted at `dir`: every
    /// complete relation directory under it is recovered — shard block
    /// files load as bases, the WAL's intact suffix replays on top — and
    /// subsequent ingest is write-ahead-logged there. The `config`'s
    /// durability is re-rooted at `dir` (enabling it with the default
    /// sync policy if it was `Disabled`), so the caller controls sync
    /// policy and segment size but never the directory mismatch.
    ///
    /// Corrupt manifests or block files surface as
    /// [`RecoveryError::Corrupt`] rather than a panic; a torn WAL tail is
    /// not an error — the intact prefix is kept and the tail truncated.
    pub fn open(
        dir: impl Into<std::path::PathBuf>,
        config: StoreConfig,
    ) -> Result<Self, RecoveryError> {
        Self::open_with_pool(dir, config, Arc::clone(WorkerPool::global()))
    }

    /// [`Database::open`] on an explicit [`WorkerPool`].
    pub fn open_with_pool(
        dir: impl Into<std::path::PathBuf>,
        mut config: StoreConfig,
        pool: Arc<WorkerPool>,
    ) -> Result<Self, RecoveryError> {
        config.durability = config.durability.with_dir(dir);
        let store = RelationStore::open(config)?;
        Ok(Self {
            store: Arc::new(store),
            pool,
            ..Self::default()
        })
    }

    /// Checkpoints the durable store: spills every dirty shard to a block
    /// file, advances the manifests' covered WAL positions, and trims
    /// obsolete WAL segments — bounding both recovery replay time and WAL
    /// disk usage. Counted by `checkpoints` in [`Database::store_metrics`].
    /// No-op when durability is disabled.
    pub fn checkpoint(&self) {
        self.store.checkpoint(&self.pool);
    }

    /// The worker pool handle batch execution and background compaction
    /// schedule on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The versioned relation store behind the catalog.
    pub fn store(&self) -> &RelationStore {
        &self.store
    }

    /// Registers (or replaces) a relation under a name, returning the
    /// replaced relation's last published snapshot if the name was taken.
    ///
    /// The index's family and granularity are remembered
    /// ([`StoredIndex::rebuild_config`]), so compactions rebuild the same
    /// kind of index. Custom [`SpatialIndex`]
    /// implementations go through [`Database::register_with_config`].
    ///
    /// With spatial sharding configured ([`crate::store::ShardConfig`]), the
    /// registered index's points are re-bucketed into one independently
    /// versioned shard base per grid cell; the single-shard default keeps
    /// the index as-is.
    pub fn register<I>(
        &mut self,
        name: impl Into<String>,
        index: I,
    ) -> Option<Arc<RelationSnapshot>>
    where
        I: StoredIndex,
    {
        let config = index.rebuild_config();
        let name = name.into();
        let replaced = self.store.register(name.clone(), Arc::new(index), config);
        // A wholesale (re-)registration has no per-write positions to
        // probe: every standing query on the relation re-evaluates. This
        // must not be gated on `replaced` — a deregister-then-register
        // cycle replaces the data just as much as an in-place replacement.
        if let Some(cq) = self.cq.get() {
            cq.reevaluate_all_on(&name);
        }
        replaced
    }

    /// Registers (or replaces) a relation with an explicit compaction
    /// rebuild config — the escape hatch for index types the store cannot
    /// infer a config from. Note the *initial* index is used as-is; only
    /// rebuilds use `config`.
    pub fn register_with_config<I>(
        &mut self,
        name: impl Into<String>,
        index: I,
        config: IndexConfig,
    ) -> Option<Arc<RelationSnapshot>>
    where
        I: twoknn_index::SpatialIndex + Send + Sync + 'static,
    {
        let name = name.into();
        let replaced = self.store.register(name.clone(), Arc::new(index), config);
        if let Some(cq) = self.cq.get() {
            cq.reevaluate_all_on(&name);
        }
        replaced
    }

    /// Removes a relation from the catalog, returning its last published
    /// snapshot if it existed. In-flight queries that already pinned a
    /// snapshot are unaffected.
    pub fn deregister(&mut self, name: &str) -> Option<Arc<RelationSnapshot>> {
        self.store.deregister(name)
    }

    /// Names of the registered relations, **sorted** — deterministic across
    /// runs and processes regardless of hash-map iteration order.
    pub fn relation_names(&self) -> Vec<String> {
        self.store.names()
    }

    /// Pins the current snapshot of a relation. The returned handle stays
    /// valid and immutable regardless of concurrent ingest, compaction, or
    /// catalog mutation.
    pub fn relation(&self, name: &str) -> Result<Arc<RelationSnapshot>, QueryError> {
        Ok(self.store.get(name)?.load())
    }

    /// Pins one consistent [`DbSnapshot`] of every registered relation —
    /// what `execute` does per query and `execute_batch` does per batch.
    pub fn snapshot(&self) -> DbSnapshot {
        self.store.pin()
    }

    /// The statistics profile of a registered relation (on its current
    /// snapshot). Profiles are memoized per published version
    /// ([`RelationSnapshot::profile`]), so repeat calls against an unchanged
    /// relation are O(1).
    pub fn profile(&self, name: &str) -> Result<RelationProfile, QueryError> {
        Ok(self.relation(name)?.profile())
    }

    /// Applies a batch of write operations to a relation as **one** atomic
    /// visibility step: queries observe all of the batch or none of it.
    /// Returns `(ops that changed the visible point set, new version)`.
    ///
    /// Each op is routed to the spatial shard its coordinates map to
    /// ([`crate::store::ShardConfig`]); a shard whose delta overlay outgrows
    /// the store's compaction threshold gets a background rebuild **of that
    /// shard alone** scheduled on this database's [`WorkerPool`] (on a
    /// parallelism-1 pool the rebuild runs inline — see
    /// [`WorkerPool::spawn`]), so a write burst confined to one region
    /// never triggers a full-relation rebuild.
    ///
    /// If standing queries are registered ([`Database::subscribe`]), the
    /// published batch is handed to the continuous-query maintainer: it
    /// probes the guard registry with the batch's effective write positions
    /// and re-evaluates only the subscriptions a write could actually
    /// affect (the rest are counted as `cq_skips`).
    pub fn ingest(&self, name: &str, ops: &[WriteOp]) -> Result<(usize, u64), QueryError> {
        let receipt = self.ingest_receipt(name, ops)?;
        Ok((receipt.effective, receipt.version))
    }

    /// The shared ingest step: applies the batch through the store, then
    /// notifies the continuous-query maintainer (if any) of the publish.
    fn ingest_receipt(
        &self,
        name: &str,
        ops: &[WriteOp],
    ) -> Result<crate::store::IngestReceipt, QueryError> {
        let receipt = self.store.ingest_with_receipt(name, ops, &self.pool)?;
        if let Some(cq) = self.cq.get() {
            cq.on_publish(name, ops, &receipt);
        }
        Ok(receipt)
    }

    /// Inserts a point (replacing any existing point with the same id).
    /// Returns the relation's new version.
    pub fn insert(&self, name: &str, point: Point) -> Result<u64, QueryError> {
        Ok(self.ingest(name, &[WriteOp::Upsert(point)])?.1)
    }

    /// Removes the point with `id`, returning whether it was present.
    pub fn remove(&self, name: &str, id: PointId) -> Result<bool, QueryError> {
        Ok(self.ingest(name, &[WriteOp::Remove(id)])?.0 > 0)
    }

    /// Moves a point to a new position (an upsert), returning whether the
    /// id was previously visible — `false` means this update was really a
    /// first insert. The answer is computed under the relation's writer
    /// lock, so it is exact even with concurrent writers.
    pub fn update(&self, name: &str, point: Point) -> Result<bool, QueryError> {
        let receipt = self.ingest_receipt(name, &[WriteOp::Upsert(point)])?;
        Ok(receipt.visible_before[0])
    }

    /// Synchronously compacts a relation on the calling thread (the gather
    /// phase still shards over the pool): **every spatial shard** with a
    /// non-empty delta is folded into a fresh base, regardless of the
    /// background threshold. Untouched shards are left alone, so the cost is
    /// proportional to the dirty shards, not the relation. Returns the last
    /// published version, or `None` when no shard had anything to fold (or
    /// background rebuilds already hold every dirty shard's slot).
    /// Per-shard rebuilds are counted by `shards_compacted` in
    /// [`Database::store_metrics`].
    pub fn compact_now(&self, name: &str) -> Result<Option<u64>, QueryError> {
        self.store.compact_now(name, &self.pool)
    }

    /// The store's cumulative work counters: `ingest_ops`, `compactions`
    /// (the epoch counter), rebuild scan work, and continuous-query
    /// maintenance (`cq_reevals` / `cq_skips`, plus the kNN/block work the
    /// maintainer's re-evaluations performed).
    pub fn store_metrics(&self) -> Metrics {
        self.store.metrics()
    }

    // -----------------------------------------------------------------
    // Continuous queries
    // -----------------------------------------------------------------

    /// The lazily-created continuous-query engine.
    fn cq(&self) -> &Arc<CqEngine> {
        self.cq.get_or_init(|| {
            Arc::new(CqEngine::new(
                Arc::clone(&self.store),
                Arc::clone(&self.pool),
                Arc::clone(self.store.metrics_handle()),
            ))
        })
    }

    /// Registers a **standing query**: compiles it once (with `strategy`,
    /// or the optimizer's current choice when `None`), evaluates it against
    /// the current snapshot, and registers a guard region per referenced
    /// relation so subsequent [`Database::ingest`] batches re-evaluate it
    /// only when a write could actually change its answer.
    ///
    /// The initial evaluation is emitted as the subscription's first
    /// [`ResultDelta`] (all rows `added`), so folding every polled delta in
    /// order reconstructs the standing query's current result from nothing.
    /// Re-evaluations run as detached jobs on this database's
    /// [`WorkerPool`]; [`WorkerPool::wait_idle`] deterministically awaits
    /// them (on a parallelism-1 pool they run inline in `ingest`).
    ///
    /// The pinned strategy is not re-optimized as the data drifts;
    /// re-subscribe to re-plan. Deltas are keyed by row point-ids — a
    /// retained row whose points merely moved is not re-reported.
    pub fn subscribe(
        &self,
        spec: &QuerySpec,
        strategy: Option<Strategy>,
    ) -> Result<SubscriptionId, QueryError> {
        let strategy = match strategy {
            Some(s) => s,
            None => self.plan(spec)?,
        };
        self.cq().subscribe(spec.clone(), strategy)
    }

    /// Drains a subscription's emitted-and-unpolled [`ResultDelta`]s, in
    /// emission order. Empty when nothing changed since the last poll.
    pub fn poll(&self, id: SubscriptionId) -> Result<Vec<ResultDelta>, QueryError> {
        self.cq().poll(id)
    }

    /// Drops a standing query; its pending deltas are discarded.
    pub fn unsubscribe(&self, id: SubscriptionId) -> Result<(), QueryError> {
        self.cq().unsubscribe(id)
    }

    /// A subscription's current maintained result (rows sorted by id
    /// tuple) and the highest relation version it reflects — what folding
    /// all its deltas reconstructs.
    pub fn subscription_result(&self, id: SubscriptionId) -> Result<(Vec<Row>, u64), QueryError> {
        self.cq().result(id)
    }

    /// Number of registered standing queries.
    pub fn subscription_count(&self) -> usize {
        self.cq.get().map(|cq| cq.len()).unwrap_or(0)
    }

    /// Switches the maintainer between guarded maintenance (the default)
    /// and the naive re-evaluate-all baseline — the ablation knob
    /// `ablation_cq` sweeps.
    pub fn set_cq_policy(&self, policy: MaintenancePolicy) {
        self.cq().set_policy(policy);
    }

    /// Executes a query, letting the optimizer pick the strategy and using
    /// the default execution mode (the shared worker pool when the
    /// `parallel` feature is enabled, serial otherwise).
    ///
    /// The query runs against one pinned [`DbSnapshot`]: planning and
    /// execution observe the same relation versions even while writers
    /// publish new ones.
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryResult, QueryError> {
        self.execute_with_mode(spec, ExecutionMode::default_mode())
    }

    /// Executes a query with an optimizer-chosen strategy under an explicit
    /// [`ExecutionMode`].
    pub fn execute_with_mode(
        &self,
        spec: &QuerySpec,
        mode: ExecutionMode,
    ) -> Result<QueryResult, QueryError> {
        let snapshot = self.snapshot();
        let plan = self.compile_planned_on(&snapshot, spec)?;
        Ok(self.run_plan(&*plan, mode, || "query".to_string()))
    }

    /// Runs one compiled plan with the always-on query latency histogram
    /// and, when tracing is enabled, a retained per-operator trace. The
    /// label closure only runs (and allocates) on the traced path.
    fn run_plan(
        &self,
        plan: &dyn PhysicalPlan,
        mode: ExecutionMode,
        label: impl FnOnce() -> String,
    ) -> QueryResult {
        let obs = self.store.obs();
        let start = Instant::now();
        let result = if obs.trace_enabled() {
            let (result, trace) = plan.execute_traced(mode);
            obs.push_trace(label(), trace);
            result
        } else {
            plan.execute(mode)
        };
        obs.record(HistogramKind::QueryExec, start.elapsed());
        result
    }

    /// Executes a batch of independent queries, each with the
    /// optimizer-chosen strategy.
    ///
    /// The whole batch runs against **one** pinned [`DbSnapshot`]: every
    /// query observes the same published version of every relation, even
    /// while ingest publishes new versions and background compactions swap
    /// rebuilt bases underneath.
    ///
    /// With the `parallel` feature enabled the queries are scheduled as
    /// tasks on this database's [`WorkerPool`] and each query in turn runs
    /// its operators in `Pooled` mode — batch-level and block-level tasks
    /// share **one queue**, so large batches saturate the pool with whole
    /// queries (inter-query parallelism, no merge overhead) while small or
    /// skewed batches let an expensive straggler query fan its blocks out
    /// over the workers that have gone idle. Either way the thread budget is
    /// the pool's parallelism — the two layers can never oversubscribe the
    /// machine. Results come back in input order. Without the feature this
    /// is a plain sequential loop with identical results.
    ///
    /// Each worker thread drains its share of the batch in place, so all
    /// kNN calls it issues reuse that thread's
    /// [`ScratchSpace`](twoknn_index::ScratchSpace) (via
    /// [`with_thread_scratch`](twoknn_index::with_thread_scratch)): after
    /// the first query warms a worker up, the select hot path allocates
    /// nothing per query beyond the returned neighborhoods.
    pub fn execute_batch(&self, specs: &[QuerySpec]) -> Vec<Result<QueryResult, QueryError>> {
        let window = Instant::now();
        let snapshot = self.snapshot();
        let results = if !cfg!(feature = "parallel") {
            specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    self.compile_planned_on(&snapshot, spec)
                        .map(|plan| self.run_plan(&*plan, ExecutionMode::Serial, || batch_label(i)))
                })
                .collect()
        } else {
            let indexed: Vec<(usize, &QuerySpec)> = specs.iter().enumerate().collect();
            let mut scratch = Metrics::default();
            crate::exec::run_partitioned_on(
                &indexed,
                &self.pool,
                &mut scratch,
                |&(i, spec), out, _| {
                    out.push(self.compile_planned_on(&snapshot, spec).map(|plan| {
                        self.run_plan(&*plan, ExecutionMode::Pooled, || batch_label(i))
                    }));
                },
            )
        };
        self.store
            .obs()
            .record(HistogramKind::BatchWindow, window.elapsed());
        results
    }

    /// Compiles a query with the optimizer-chosen strategy into an
    /// executable [`PhysicalPlan`] without running it. The plan pins the
    /// relations' current snapshots, so it stays valid (and frozen) however
    /// long the caller holds it.
    pub fn compile_planned(&self, spec: &QuerySpec) -> Result<Box<dyn PhysicalPlan>, QueryError> {
        self.compile_planned_on(&self.snapshot(), spec)
    }

    /// Plans and compiles against an explicit pinned snapshot — the shared
    /// step behind every execution path, keeping strategy choice and
    /// execution on the same relation versions.
    fn compile_planned_on(
        &self,
        snapshot: &DbSnapshot,
        spec: &QuerySpec,
    ) -> Result<Box<dyn PhysicalPlan>, QueryError> {
        let strategy = self.plan_on(snapshot, spec)?;
        compile(snapshot, spec, strategy)
    }

    /// Compiles a query with an explicit strategy into an executable
    /// [`PhysicalPlan`] without running it (pinning the relations' current
    /// snapshots).
    pub fn compile(
        &self,
        spec: &QuerySpec,
        strategy: Strategy,
    ) -> Result<Box<dyn PhysicalPlan>, QueryError> {
        compile(&self.snapshot(), spec, strategy)
    }

    /// The strategy the optimizer would choose for a query (on the current
    /// snapshots).
    pub fn plan(&self, spec: &QuerySpec) -> Result<Strategy, QueryError> {
        self.plan_on(&self.snapshot(), spec)
    }

    /// Strategy choice against an explicit pinned snapshot. Relation
    /// profiles come from the snapshots' per-version memo, so a batch of
    /// queries planned against one pinned [`DbSnapshot`] computes each
    /// relation's statistics at most once — not once per query.
    fn plan_on(&self, snapshot: &DbSnapshot, spec: &QuerySpec) -> Result<Strategy, QueryError> {
        let profile = |name: &str| -> Result<RelationProfile, QueryError> {
            Ok(snapshot.snapshot(name)?.profile())
        };
        Ok(match spec {
            QuerySpec::SelectInnerOfJoin { outer, .. } => {
                Strategy::SelectInner(self.optimizer.choose_select_inner(&profile(outer)?))
            }
            QuerySpec::SelectOuterOfJoin { outer, .. } => {
                Strategy::SelectOuter(self.optimizer.choose_select_outer(&profile(outer)?))
            }
            QuerySpec::UnchainedJoins { a, c, .. } => {
                Strategy::Unchained(self.optimizer.choose_unchained(&profile(a)?, &profile(c)?))
            }
            QuerySpec::ChainedJoins { b, .. } => {
                Strategy::Chained(self.optimizer.choose_chained(&profile(b)?))
            }
            QuerySpec::TwoSelects { query, .. } => {
                Strategy::TwoSelects(self.optimizer.choose_two_selects(query))
            }
            QuerySpec::KnnSelect { relation, .. } => {
                Strategy::Select(self.optimizer.choose_select(&profile(relation)?))
            }
            // Filters don't change the strategy family: plan the wrapped
            // shape, `compile` threads the filters through the operator.
            QuerySpec::Filtered { spec, .. } => self.plan_on(snapshot, spec)?,
        })
    }

    /// Executes a query with an explicitly chosen strategy under the default
    /// execution mode: the plan is compiled into its physical operator and
    /// run.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownRelation`] for missing relations and
    /// [`QueryError::UnsupportedPlanShape`] when the strategy does not match
    /// the query shape.
    pub fn execute_with(
        &self,
        spec: &QuerySpec,
        strategy: Strategy,
    ) -> Result<QueryResult, QueryError> {
        self.execute_with_strategy_and_mode(spec, strategy, ExecutionMode::default_mode())
    }

    /// Executes a query with an explicit strategy **and** execution mode —
    /// the fully-specified entry point the others delegate to.
    pub fn execute_with_strategy_and_mode(
        &self,
        spec: &QuerySpec,
        strategy: Strategy,
        mode: ExecutionMode,
    ) -> Result<QueryResult, QueryError> {
        let plan = self.compile(spec, strategy)?;
        Ok(self.run_plan(&*plan, mode, || "query (pinned strategy)".to_string()))
    }

    // -----------------------------------------------------------------
    // Textual queries
    // -----------------------------------------------------------------

    /// Parses a textual query (see [`crate::plan::lang`] for the grammar)
    /// into a [`QuerySpec`] without executing it. Syntax and rewrite errors
    /// come back as [`QueryError::Parse`] carrying the offending span.
    pub fn parse_query(&self, text: &str) -> Result<QuerySpec, QueryError> {
        Ok(crate::plan::lang::parse_query(text)?)
    }

    /// Parses and executes a textual query in one step: the declarative
    /// front-end over [`Database::execute`].
    ///
    /// ```
    /// # use twoknn_core::plan::Database;
    /// # use twoknn_index::GridIndex;
    /// # use twoknn_geometry::Point;
    /// # let mut db = Database::new();
    /// # let pts: Vec<Point> = (0..50).map(|i| Point::new(i, i as f64, 0.0)).collect();
    /// # db.register("Sites", GridIndex::build(pts, 4).unwrap());
    /// let result = db
    ///     .query("FIND Sites WHERE KNN(3, 10, 0) AND ID <= 40")
    ///     .unwrap();
    /// assert_eq!(result.num_rows(), 3);
    /// ```
    pub fn query(&self, text: &str) -> Result<QueryResult, QueryError> {
        let spec = self.parse_query(text)?;
        self.execute(&spec)
    }

    /// Executes an already-parsed textual query — an alias for
    /// [`Database::execute`] that completes the parse → plan → execute
    /// pipeline when the caller keeps the [`QuerySpec`] around (e.g. to run
    /// it repeatedly, or through [`Database::execute_batch`]).
    pub fn execute_parsed(&self, spec: &QuerySpec) -> Result<QueryResult, QueryError> {
        self.execute(spec)
    }

    /// Parses a textual query and registers it as a **standing query** (see
    /// [`Database::subscribe`]). Guard regions are derived from the
    /// *filtered* result — a filtered k-th-NN distance is never smaller
    /// than the unfiltered one, so the guard circle stays sound.
    pub fn subscribe_query(&self, text: &str) -> Result<SubscriptionId, QueryError> {
        let spec = self.parse_query(text)?;
        self.subscribe(&spec, None)
    }

    // -----------------------------------------------------------------
    // Observability
    // -----------------------------------------------------------------

    /// `EXPLAIN` for a textual query: parses it (without executing) and
    /// reports the full decision chain — the parsed AST, the logical plan
    /// the rewriter produced, the filter-placement rewrites, the strategy
    /// the optimizer chose on the current snapshots, and the compiled
    /// physical operator tree.
    pub fn explain(&self, text: &str) -> Result<PlanExplain, QueryError> {
        let query = crate::plan::lang::parse(text)?;
        let spec = query.to_spec(text)?;
        let mut explain = self.explain_spec(&spec)?;
        explain.query = Some(text.trim().to_string());
        explain.ast = Some(query.to_string());
        explain.logical = Some(query.to_logical().to_string());
        Ok(explain)
    }

    /// `EXPLAIN` for a pre-built [`QuerySpec`]: the rewrites, chosen
    /// strategy, and compiled operator tree (no AST or logical stage —
    /// the query never went through the parser).
    pub fn explain_spec(&self, spec: &QuerySpec) -> Result<PlanExplain, QueryError> {
        let snapshot = self.snapshot();
        let strategy = self.plan_on(&snapshot, spec)?;
        let plan = compile(&snapshot, spec, strategy)?;
        Ok(PlanExplain {
            query: None,
            ast: None,
            logical: None,
            rewrites: rewrites_of(spec),
            strategy,
            root: OpNode::from_plan(&*plan),
        })
    }

    /// `EXPLAIN ANALYZE` for a textual query: explains it, executes it
    /// (default mode), and annotates every operator with wall time, rows
    /// emitted, and its [`Metrics`] counter delta. The root trace's
    /// inclusive counters reconcile exactly with the result's metrics.
    pub fn explain_analyze(&self, text: &str) -> Result<AnalyzedQuery, QueryError> {
        let query = crate::plan::lang::parse(text)?;
        let spec = query.to_spec(text)?;
        let mut analyzed = self.explain_analyze_spec(&spec)?;
        analyzed.explain.query = Some(text.trim().to_string());
        analyzed.explain.ast = Some(query.to_string());
        analyzed.explain.logical = Some(query.to_logical().to_string());
        Ok(analyzed)
    }

    /// `EXPLAIN ANALYZE` for a pre-built [`QuerySpec`].
    pub fn explain_analyze_spec(&self, spec: &QuerySpec) -> Result<AnalyzedQuery, QueryError> {
        let snapshot = self.snapshot();
        let strategy = self.plan_on(&snapshot, spec)?;
        let plan = compile(&snapshot, spec, strategy)?;
        let explain = PlanExplain {
            query: None,
            ast: None,
            logical: None,
            rewrites: rewrites_of(spec),
            strategy,
            root: OpNode::from_plan(&*plan),
        };
        let obs = self.store.obs();
        let start = Instant::now();
        let (result, trace) = plan.execute_traced(ExecutionMode::default_mode());
        obs.record(HistogramKind::QueryExec, start.elapsed());
        Ok(AnalyzedQuery {
            explain,
            trace,
            result,
        })
    }

    /// A point-in-time report over the whole database: the cumulative
    /// [`Metrics`] counters, every latency histogram, pool gauges,
    /// per-relation version/size/shard gauges, and the pending lifecycle
    /// event count. Renders as text via `Display` or as line-oriented JSON
    /// via [`MetricsReport::to_json_lines`].
    pub fn metrics_report(&self) -> MetricsReport {
        let obs = self.store.obs();
        let mut relations: Vec<RelationGauges> = Vec::new();
        for name in self.store.names() {
            let Ok(rel) = self.store.get(&name) else {
                continue; // deregistered between listing and lookup
            };
            let snap = rel.load();
            relations.push(RelationGauges {
                name,
                version: snap.version(),
                num_points: snap.num_points(),
                delta_len: snap.delta_len(),
                shards: rel.num_shards(),
            });
        }
        MetricsReport {
            counters: self.store.metrics(),
            histograms: obs.histograms(),
            pool_queue_depth: self.pool.queue_depth(),
            pool_detached: self.pool.detached_in_flight(),
            relations,
            events_pending: obs.events_pending(),
        }
    }

    /// Removes and returns every pending lifecycle event (compactions,
    /// checkpoints, WAL segment trims, recoveries, cq re-eval storms),
    /// oldest first.
    pub fn drain_events(&self) -> Vec<Event> {
        self.store.obs().drain_events()
    }

    /// Removes and returns every retained execution trace, oldest first.
    /// Empty unless tracing is on ([`Database::set_tracing`] or
    /// [`crate::store::StoreConfig::trace`]).
    pub fn drain_traces(&self) -> Vec<QueryTrace> {
        self.store.obs().drain_traces()
    }

    /// Turns per-operator execution tracing on or off at runtime.
    pub fn set_tracing(&self, enabled: bool) {
        self.store.obs().set_trace_enabled(enabled);
    }

    /// Whether per-operator execution tracing is currently on.
    pub fn tracing_enabled(&self) -> bool {
        self.store.obs().trace_enabled()
    }
}

/// Label for a retained batch-member trace.
fn batch_label(i: usize) -> String {
    format!("batch[{i}]")
}

/// Human-readable filter-placement rewrite lines for a spec (empty unless
/// the spec is [`QuerySpec::Filtered`]).
fn rewrites_of(spec: &QuerySpec) -> Vec<String> {
    let QuerySpec::Filtered { filters, .. } = spec else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (relation, predicate) in &filters.pre {
        out.push(format!(
            "pre-kNN filter on `{relation}`: {predicate} (pushed below the kNN predicates)"
        ));
    }
    for (relation, predicate) in &filters.post {
        out.push(format!(
            "post-kNN filter on `{relation}`: {predicate} (residual filter over result rows)"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::{pair_id_set, point_id_set, triplet_id_set};
    use crate::plan::strategy::{
        ChainedStrategy, SelectInnerStrategy, SelectOuterStrategy, TwoSelectsStrategy,
        UnchainedStrategy,
    };
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x2545F4914F6CDD1D) ^ seed;
                Point::new(
                    i as u64,
                    (h % 499) as f64 * 0.2,
                    ((h / 499) % 499) as f64 * 0.2,
                )
            })
            .collect()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.register("A", GridIndex::build(scattered(120, 1), 8).unwrap());
        db.register("B", GridIndex::build(scattered(250, 2), 8).unwrap());
        db.register("C", GridIndex::build(scattered(140, 3), 8).unwrap());
        db
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "Nope".into(),
            query: TwoSelectsQuery::new(
                1,
                Point::anonymous(0.0, 0.0),
                1,
                Point::anonymous(1.0, 1.0),
            ),
        };
        assert!(matches!(
            db.execute(&spec),
            Err(QueryError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn mismatched_strategy_is_rejected() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "A".into(),
            query: TwoSelectsQuery::new(
                2,
                Point::anonymous(0.0, 0.0),
                2,
                Point::anonymous(1.0, 1.0),
            ),
        };
        let err = db
            .execute_with(&spec, Strategy::Chained(ChainedStrategy::RightDeep))
            .unwrap_err();
        assert!(matches!(err, QueryError::UnsupportedPlanShape { .. }));
    }

    #[test]
    fn select_inner_strategies_agree_through_the_executor() {
        let db = db();
        let spec = QuerySpec::SelectInnerOfJoin {
            outer: "A".into(),
            inner: "B".into(),
            query: SelectInnerJoinQuery::new(2, 3, Point::anonymous(30.0, 40.0)),
        };
        let results: Vec<_> = [
            SelectInnerStrategy::Conceptual,
            SelectInnerStrategy::Counting,
            SelectInnerStrategy::BlockMarking,
        ]
        .into_iter()
        .map(|s| db.execute_with(&spec, Strategy::SelectInner(s)).unwrap())
        .collect();
        let sets: Vec<_> = results
            .iter()
            .map(|r| match r {
                QueryResult::Pairs { output, .. } => pair_id_set(&output.rows),
                _ => panic!("expected pairs"),
            })
            .collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
        // The auto-planned execution agrees too.
        let auto = db.execute(&spec).unwrap();
        assert_eq!(auto.num_rows(), results[0].num_rows());
    }

    #[test]
    fn unchained_strategies_agree_through_the_executor() {
        let db = db();
        let spec = QuerySpec::UnchainedJoins {
            a: "A".into(),
            b: "B".into(),
            c: "C".into(),
            query: UnchainedJoinQuery::new(2, 2),
        };
        let sets: Vec<_> = [
            UnchainedStrategy::Conceptual,
            UnchainedStrategy::BlockMarkingStartWithA,
            UnchainedStrategy::BlockMarkingStartWithC,
        ]
        .into_iter()
        .map(
            |s| match db.execute_with(&spec, Strategy::Unchained(s)).unwrap() {
                QueryResult::Triplets { output, .. } => triplet_id_set(&output.rows),
                _ => panic!("expected triplets"),
            },
        )
        .collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[0], sets[2]);
    }

    #[test]
    fn chained_and_two_select_paths_work_end_to_end() {
        let db = db();
        let chained = QuerySpec::ChainedJoins {
            a: "A".into(),
            b: "B".into(),
            c: "C".into(),
            query: ChainedJoinQuery::new(2, 2),
        };
        let r1 = db.execute(&chained).unwrap();
        assert!(matches!(r1, QueryResult::Triplets { .. }));
        assert!(r1.num_rows() > 0);
        assert!(r1.metrics().neighborhoods_computed > 0);

        let selects = QuerySpec::TwoSelects {
            relation: "B".into(),
            query: TwoSelectsQuery::new(
                5,
                Point::anonymous(30.0, 30.0),
                50,
                Point::anonymous(35.0, 35.0),
            ),
        };
        let fast = db.execute(&selects).unwrap();
        let slow = db
            .execute_with(
                &selects,
                Strategy::TwoSelects(TwoSelectsStrategy::Conceptual),
            )
            .unwrap();
        match (&fast, &slow) {
            (QueryResult::Points { output: f, .. }, QueryResult::Points { output: s, .. }) => {
                assert_eq!(point_id_set(&f.rows), point_id_set(&s.rows));
            }
            _ => panic!("expected point results"),
        }
    }

    #[test]
    fn planner_reports_strategies() {
        let db = db();
        let spec = QuerySpec::SelectOuterOfJoin {
            outer: "A".into(),
            inner: "B".into(),
            query: SelectOuterJoinQuery::new(2, 2, Point::anonymous(0.0, 0.0)),
        };
        assert_eq!(
            db.plan(&spec).unwrap(),
            Strategy::SelectOuter(SelectOuterStrategy::Pushdown)
        );
        let r = db.execute(&spec).unwrap();
        assert_eq!(
            r.strategy(),
            Strategy::SelectOuter(SelectOuterStrategy::Pushdown)
        );
    }

    #[test]
    fn textual_queries_run_end_to_end() {
        let db = db();
        let result = db.query("FIND B WHERE KNN(5, 30, 30)").unwrap();
        assert_eq!(result.num_rows(), 5);
        assert!(matches!(result.strategy(), Strategy::Select(_)));

        // Filters in both placements execute through the same entry point.
        let filtered = db
            .query(
                "FIND (B WHERE INSIDE(RECT(0, 0, 100, 100))) \
                 WHERE KNN(5, 30, 30) AND ID BETWEEN 0 AND 200",
            )
            .unwrap();
        assert!(filtered.num_rows() <= 5);

        // Parse errors surface as QueryError::Parse with the span intact.
        let err = db.query("FIND B WHERE").unwrap_err();
        match err {
            QueryError::Parse(parse) => assert!(parse.start <= parse.query.len()),
            other => panic!("expected a parse error, got {other:?}"),
        }

        // Unknown relations surface at execution, not parse, time.
        assert!(matches!(
            db.query("FIND Nope WHERE KNN(1, 0, 0)"),
            Err(QueryError::UnknownRelation { .. })
        ));

        // `execute_parsed` + `execute_batch` run the same parsed spec.
        let spec = db.parse_query("FIND B WHERE KNN(5, 30, 30)").unwrap();
        assert_eq!(db.execute_parsed(&spec).unwrap().num_rows(), 5);
        let batch = db.execute_batch(&[spec.clone(), spec]);
        assert!(batch.iter().all(|r| r.as_ref().unwrap().num_rows() == 5));
    }

    #[test]
    fn relation_names_and_profiles() {
        let db = db();
        // `relation_names` is sorted by contract — no caller-side sort.
        assert_eq!(db.relation_names(), vec!["A", "B", "C"]);
        let p = db.profile("A").unwrap();
        assert_eq!(p.num_points, 120);
        assert!(db.profile("missing").is_err());
    }
}
