//! Physical strategies available for each two-predicate query shape.

/// Strategy for a kNN-select on the inner relation of a kNN-join (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectInnerStrategy {
    /// The conceptually correct QEP: full join, then intersect.
    Conceptual,
    /// The Counting algorithm (Procedure 1): per-outer-point count test.
    Counting,
    /// The Block-Marking algorithm (Procedures 2–3): per-block contour-based
    /// preprocessing. The paper's default for dense outer relations.
    #[default]
    BlockMarking,
}

/// Strategy for a kNN-select on the outer relation of a kNN-join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectOuterStrategy {
    /// Evaluate the join for every outer point, select afterwards.
    SelectAfterJoin,
    /// Push the select below the outer relation (valid, and much cheaper).
    #[default]
    Pushdown,
}

/// Strategy for two unchained kNN-joins (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnchainedStrategy {
    /// Evaluate both joins independently and intersect on B (Figure 10).
    Conceptual,
    /// Procedure 4: evaluate `A ⋈ B` first, mark Candidate/Safe blocks, prune
    /// Non-Contributing blocks of `C`.
    BlockMarkingStartWithA,
    /// Procedure 4 with the joins swapped: evaluate `C ⋈ B` first and prune
    /// blocks of `A`.
    BlockMarkingStartWithC,
}

/// Strategy for two chained kNN-joins (Section 4.2, Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainedStrategy {
    /// QEP1: right-deep plan, `B ⋈ C` materialized first.
    RightDeep,
    /// QEP2: both joins evaluated independently, intersected on B.
    JoinIntersection,
    /// QEP3: nested join without caching.
    NestedJoin,
    /// QEP3 with the per-`b` neighborhood cache (the paper's recommendation).
    #[default]
    NestedJoinCached,
}

/// Strategy for two kNN-selects (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TwoSelectsStrategy {
    /// Evaluate both selects in full and intersect (Figure 16).
    Conceptual,
    /// Procedure 5: bound the larger-k predicate's locality by the smaller-k
    /// neighborhood.
    #[default]
    TwoKnnSelect,
}

/// Strategy for a single (optionally filtered) kNN-select — the "k nearest
/// *matching* points" shape the declarative front-end produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectStrategy {
    /// Predicate-masked block kernel: blocks visited in MINDIST order, the
    /// batched distance pass masked by the predicate, τ-pruning against the
    /// k-th *matching* distance (conservative, hence sound).
    #[default]
    FilteredKernel,
    /// Scan-then-filter baseline: materialize every matching point, then
    /// sort by distance. The ablation reference of `ablation_filter`.
    FilterThenScan,
}

/// A strategy for any of the supported query shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Strategy for [`crate::select_join::SelectInnerJoinQuery`].
    SelectInner(SelectInnerStrategy),
    /// Strategy for [`crate::select_join::SelectOuterJoinQuery`].
    SelectOuter(SelectOuterStrategy),
    /// Strategy for [`crate::joins2::UnchainedJoinQuery`].
    Unchained(UnchainedStrategy),
    /// Strategy for [`crate::joins2::ChainedJoinQuery`].
    Chained(ChainedStrategy),
    /// Strategy for [`crate::selects2::TwoSelectsQuery`].
    TwoSelects(TwoSelectsStrategy),
    /// Strategy for [`crate::select::KnnSelectQuery`].
    Select(SelectStrategy),
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::SelectInner(s) => write!(f, "select-inner/{s:?}"),
            Strategy::SelectOuter(s) => write!(f, "select-outer/{s:?}"),
            Strategy::Unchained(s) => write!(f, "unchained/{s:?}"),
            Strategy::Chained(s) => write!(f, "chained/{s:?}"),
            Strategy::TwoSelects(s) => write!(f, "two-selects/{s:?}"),
            Strategy::Select(s) => write!(f, "select/{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendations() {
        assert_eq!(
            SelectInnerStrategy::default(),
            SelectInnerStrategy::BlockMarking
        );
        assert_eq!(
            SelectOuterStrategy::default(),
            SelectOuterStrategy::Pushdown
        );
        assert_eq!(
            ChainedStrategy::default(),
            ChainedStrategy::NestedJoinCached
        );
        assert_eq!(
            TwoSelectsStrategy::default(),
            TwoSelectsStrategy::TwoKnnSelect
        );
    }

    #[test]
    fn display_is_informative() {
        let s = Strategy::Chained(ChainedStrategy::NestedJoinCached);
        assert!(s.to_string().contains("chained"));
        assert!(s.to_string().contains("NestedJoinCached"));
    }
}
