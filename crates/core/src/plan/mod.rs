//! A small query-planning layer around the two-kNN-predicate algorithms.
//!
//! The paper frames its contribution as *query optimization*: which plans are
//! semantically valid for a query with two kNN predicates, and which
//! algorithm evaluates a valid plan fastest given the data distribution. This
//! module exposes that framing programmatically:
//!
//! * [`logical`] — a logical expression tree for kNN-select / kNN-join
//!   queries, a validator that rejects semantically invalid compositions
//!   (e.g. a kNN-select pushed below the inner relation of a kNN-join), and
//!   the legal/illegal rewrites of the paper as explicit transformations;
//! * [`stats`] — cheap per-relation statistics (cardinality, block occupancy,
//!   coverage, skew) computed from index block metadata;
//! * [`strategy`] — the physical strategies available for each query shape;
//! * [`optimizer`] — the paper's heuristics (Sections 3.3 and 4.1.2) mapping
//!   statistics to a strategy;
//! * [`physical`] — the physical-operator layer: [`compile`] resolves
//!   relation names against a pinned [`crate::store::DbSnapshot`] and lowers
//!   a `(QuerySpec, Strategy)` pair into a [`PhysicalPlan`] operator that
//!   owns its snapshot handles and runs serially or partitioned over the
//!   persistent worker pool;
//! * [`lang`] — the declarative textual front-end: a hand-written lexer and
//!   recursive-descent parser for `FIND … WHERE …` queries, plus the
//!   rewriter that extracts the kNN predicates and classifies the residual
//!   filters as pre-kNN ("the k nearest *matching* points") or post-kNN
//!   (result pruning), producing a [`QuerySpec`];
//! * [`executor`] — the catalog (`Database`, backed by the versioned
//!   [`crate::store::RelationStore`] and owning a handle to the shared
//!   [`crate::exec::WorkerPool`]) plus the thin driver chaining
//!   snapshot-pin → optimizer → compile → execute, a concurrent batch entry
//!   point that pins **one** snapshot per batch and schedules whole queries
//!   on the same pool the operators use, and the ingest entry points
//!   (`insert` / `remove` / `update` / `ingest`) that publish new relation
//!   versions and trigger background compactions.

pub mod executor;
pub mod lang;
pub mod logical;
pub mod optimizer;
pub mod physical;
pub mod stats;
pub mod strategy;

pub use executor::{Database, QueryFilters, QueryResult, QuerySpec};
pub use lang::parse_query;
pub use logical::{LogicalExpr, Rewrite};
pub use optimizer::Optimizer;
pub use physical::{compile, PhysicalPlan, Relation, Row, RowSchema};
pub use stats::RelationProfile;
pub use strategy::{
    ChainedStrategy, SelectInnerStrategy, SelectOuterStrategy, SelectStrategy, Strategy,
    TwoSelectsStrategy, UnchainedStrategy,
};
