//! Logical expressions over kNN predicates, their validation, and the
//! paper's equivalence rules as explicit rewrites.
//!
//! The expression tree is deliberately small: relations, kNN-select,
//! kNN-join, the pair-set intersection on the shared relation (`∩_B`), and
//! the plain set intersection used by the two-kNN-select query. The
//! [`LogicalExpr::validate`] method enforces the *semantic* rules the paper
//! establishes:
//!
//! 1. A kNN-select **may not** be applied to the inner input of a kNN-join
//!    (that is the invalid pushdown of Figure 2) — the select must instead be
//!    expressed as an intersection with the join's result.
//! 2. A kNN-select applied directly on top of another kNN-select is invalid
//!    (Figures 14–15); two selects combine through an intersection.
//! 3. A kNN-join whose inner input is another kNN-join's *output restricted
//!    to B* is the invalid sequential evaluation of unchained joins
//!    (Figures 8–9).
//!
//! [`Rewrite`] enumerates the transformations the paper proves valid
//! (outer-select pushdown, chained-join reordering) and
//! [`LogicalExpr::apply`] refuses the invalid ones with a
//! [`QueryError::InvalidTransformation`].

use twoknn_geometry::{Point, Predicate};

use crate::error::QueryError;

/// A logical expression over point relations and kNN predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalExpr {
    /// A named base relation of points.
    Relation {
        /// The relation's name in the catalog.
        name: String,
    },
    /// `σ_{k,f}(input)`: the k points of `input` closest to `focal`.
    KnnSelect {
        /// Input expression (must produce points).
        input: Box<LogicalExpr>,
        /// Number of neighbors to keep.
        k: usize,
        /// The focal point.
        focal: Point,
    },
    /// `outer ⋈kNN inner`: pairs `(o, i)` where `i` is among the k nearest
    /// inner points of `o`.
    KnnJoin {
        /// Outer input (each of its points probes the inner input).
        outer: Box<LogicalExpr>,
        /// Inner input (must be a base relation or a valid point expression).
        inner: Box<LogicalExpr>,
        /// Number of neighbors per outer point.
        k: usize,
    },
    /// Intersection of two pair sets on their shared (inner) component: the
    /// `∩_B` operator used by unchained joins and by the conceptually correct
    /// select-inner-join QEP.
    IntersectOnInner {
        /// Left pair-producing expression.
        left: Box<LogicalExpr>,
        /// Right pair- or point-producing expression.
        right: Box<LogicalExpr>,
    },
    /// Plain set intersection of two point sets (two kNN-selects, Figure 16).
    Intersect {
        /// Left point-producing expression.
        left: Box<LogicalExpr>,
        /// Right point-producing expression.
        right: Box<LogicalExpr>,
    },
    /// `filter_p(input)`: the rows of `input` whose point (for pair output:
    /// whose *outer* point) satisfies the predicate.
    ///
    /// Placement is semantics-bearing, exactly like the paper's kNN-selects:
    /// a filter **below** a kNN predicate changes its candidate set ("the k
    /// nearest *matching* points"), a filter **above** it keeps the candidate
    /// set and drops rows from the answer. The two are different queries, so
    /// [`LogicalExpr::apply`] refuses to move a filter across a kNN operator
    /// except in the one provably-safe direction (below the join's *outer*
    /// input, the Figure 3 analogue).
    Filter {
        /// Input expression.
        input: Box<LogicalExpr>,
        /// The filter predicate.
        predicate: Predicate,
    },
}

/// What kind of collection an expression produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprKind {
    /// A set of points.
    Points,
    /// A set of (outer, inner) pairs.
    Pairs,
}

impl LogicalExpr {
    /// A base relation.
    pub fn relation(name: impl Into<String>) -> Self {
        LogicalExpr::Relation { name: name.into() }
    }

    /// Wraps this expression in a kNN-select.
    pub fn knn_select(self, k: usize, focal: Point) -> Self {
        LogicalExpr::KnnSelect {
            input: Box::new(self),
            k,
            focal,
        }
    }

    /// Joins this expression (as outer) with `inner`.
    pub fn knn_join(self, inner: LogicalExpr, k: usize) -> Self {
        LogicalExpr::KnnJoin {
            outer: Box::new(self),
            inner: Box::new(inner),
            k,
        }
    }

    /// Intersects two pair sets on the inner component (`∩_B`).
    pub fn intersect_on_inner(self, right: LogicalExpr) -> Self {
        LogicalExpr::IntersectOnInner {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Intersects two point sets.
    pub fn intersect(self, right: LogicalExpr) -> Self {
        LogicalExpr::Intersect {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Wraps this expression in a filter.
    pub fn filter(self, predicate: Predicate) -> Self {
        LogicalExpr::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// The kind of collection the expression produces.
    pub fn kind(&self) -> ExprKind {
        match self {
            LogicalExpr::Relation { .. }
            | LogicalExpr::KnnSelect { .. }
            | LogicalExpr::Intersect { .. } => ExprKind::Points,
            LogicalExpr::KnnJoin { .. } | LogicalExpr::IntersectOnInner { .. } => ExprKind::Pairs,
            LogicalExpr::Filter { input, .. } => input.kind(),
        }
    }

    /// Number of kNN predicates (selects + joins) in the expression.
    pub fn num_knn_predicates(&self) -> usize {
        match self {
            LogicalExpr::Relation { .. } => 0,
            LogicalExpr::KnnSelect { input, .. } => 1 + input.num_knn_predicates(),
            LogicalExpr::KnnJoin { outer, inner, .. } => {
                1 + outer.num_knn_predicates() + inner.num_knn_predicates()
            }
            LogicalExpr::IntersectOnInner { left, right }
            | LogicalExpr::Intersect { left, right } => {
                left.num_knn_predicates() + right.num_knn_predicates()
            }
            LogicalExpr::Filter { input, .. } => input.num_knn_predicates(),
        }
    }

    /// Whether the expression contains any [`LogicalExpr::Filter`] node.
    pub fn contains_filter(&self) -> bool {
        match self {
            LogicalExpr::Relation { .. } => false,
            LogicalExpr::Filter { .. } => true,
            LogicalExpr::KnnSelect { input, .. } => input.contains_filter(),
            LogicalExpr::KnnJoin { outer, inner, .. } => {
                outer.contains_filter() || inner.contains_filter()
            }
            LogicalExpr::IntersectOnInner { left, right }
            | LogicalExpr::Intersect { left, right } => {
                left.contains_filter() || right.contains_filter()
            }
        }
    }

    /// Validates the expression against the paper's semantic rules.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::InvalidTransformation`] describing the first
    /// violated rule, or [`QueryError::ZeroK`] for a predicate with `k = 0`.
    pub fn validate(&self) -> Result<(), QueryError> {
        match self {
            LogicalExpr::Relation { .. } => Ok(()),
            LogicalExpr::KnnSelect { input, k, .. } => {
                if *k == 0 {
                    return Err(QueryError::ZeroK {
                        predicate: "kNN-select",
                    });
                }
                // Rule 2: a select directly over another select is the
                // invalid sequential evaluation of Figures 14–15.
                if matches!(**input, LogicalExpr::KnnSelect { .. }) {
                    return Err(QueryError::InvalidTransformation {
                        reason: "a kNN-select over the output of another kNN-select changes the \
                                 query's meaning; combine two kNN-selects with an intersection \
                                 (Figure 16)"
                            .to_string(),
                    });
                }
                // A select over pair output is not defined in this algebra.
                if input.kind() == ExprKind::Pairs {
                    return Err(QueryError::UnsupportedPlanShape {
                        description: "kNN-select applied to pair output; select one component \
                                      via an intersection instead"
                            .to_string(),
                    });
                }
                input.validate()
            }
            LogicalExpr::KnnJoin { outer, inner, k } => {
                if *k == 0 {
                    return Err(QueryError::ZeroK {
                        predicate: "kNN-join",
                    });
                }
                // Rule 1: the inner input must be a base relation (or another
                // full point set that was not reduced by a kNN predicate).
                if inner.num_knn_predicates() > 0 {
                    return Err(QueryError::InvalidTransformation {
                        reason: "a kNN predicate below the inner relation of a kNN-join reduces \
                                 the join's scope and changes its result (Figure 2); express the \
                                 restriction as an intersection with the join output instead"
                            .to_string(),
                    });
                }
                // Figure 2 analogue for filters: reducing the inner relation
                // changes every outer point's neighborhood, so a filter may
                // not ride below the join's inner input either.
                if inner.contains_filter() {
                    return Err(QueryError::InvalidTransformation {
                        reason: "a filter below the inner relation of a kNN-join changes every \
                                 neighborhood the join computes (the Figure 2 pushdown argument \
                                 applies to any predicate that reduces the inner relation); \
                                 apply the filter to the join's output instead"
                            .to_string(),
                    });
                }
                if outer.kind() == ExprKind::Pairs {
                    return Err(QueryError::UnsupportedPlanShape {
                        description: "kNN-join whose outer input produces pairs".to_string(),
                    });
                }
                outer.validate()?;
                inner.validate()
            }
            LogicalExpr::IntersectOnInner { left, right } => {
                if left.kind() != ExprKind::Pairs {
                    return Err(QueryError::UnsupportedPlanShape {
                        description: "∩_B requires a pair-producing left input".to_string(),
                    });
                }
                left.validate()?;
                right.validate()
            }
            LogicalExpr::Intersect { left, right } => {
                if left.kind() != ExprKind::Points || right.kind() != ExprKind::Points {
                    return Err(QueryError::UnsupportedPlanShape {
                        description: "point intersection requires point-producing inputs"
                            .to_string(),
                    });
                }
                left.validate()?;
                right.validate()
            }
            LogicalExpr::Filter { input, .. } => input.validate(),
        }
    }
}

impl std::fmt::Display for LogicalExpr {
    /// Prints the algebraic form of the expression: `σ[k,f](E)` for selects,
    /// `(E1 ⋈[k] E2)` for joins, `∩_B`/`∩` for the intersections, and
    /// `filter[p](E)` with the predicate's concrete syntax for filters.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicalExpr::Relation { name } => write!(f, "{name}"),
            LogicalExpr::KnnSelect { input, k, focal } => {
                write!(f, "σ[k={k}, f=({}, {})]({input})", focal.x, focal.y)
            }
            LogicalExpr::KnnJoin { outer, inner, k } => {
                write!(f, "({outer} ⋈[k={k}] {inner})")
            }
            LogicalExpr::IntersectOnInner { left, right } => {
                write!(f, "∩_B({left}, {right})")
            }
            LogicalExpr::Intersect { left, right } => write!(f, "∩({left}, {right})"),
            LogicalExpr::Filter { input, predicate } => {
                write!(f, "filter[{predicate}]({input})")
            }
        }
    }
}

/// The plan transformations discussed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rewrite {
    /// Push a kNN-select (expressed as an intersection on the outer
    /// component) below the **outer** relation of a kNN-join — valid
    /// (Figure 3).
    PushSelectBelowJoinOuter,
    /// Push a kNN-select below the **inner** relation of a kNN-join —
    /// invalid (Figure 2); applying it returns an error.
    PushSelectBelowJoinInner,
    /// Reorder the evaluation of two chained kNN-joins (QEP1 ⇄ QEP3) —
    /// valid (Figure 13).
    ReorderChainedJoins,
    /// Turn the independent evaluation of two kNN-selects into a sequential
    /// one — invalid (Figures 14–15); applying it returns an error.
    SequentializeTwoSelects,
    /// Push a filter over a kNN-join's output down to the join's **outer**
    /// input — valid, the Figure 3 analogue for filters (the filter tests
    /// the pair's outer point, and reducing the outer relation only removes
    /// whole neighborhoods, never reshapes one).
    PushFilterBelowJoinOuter,
    /// Push a filter below the **inner** relation of a kNN-join — invalid
    /// (the Figure 2 argument applies to any predicate reducing the inner
    /// relation); applying it returns an error.
    PushFilterBelowJoinInner,
    /// Move a filter from above a kNN-select to below it (post-kNN → pre-kNN
    /// placement) — invalid: "the k nearest points, then keep the matching
    /// ones" and "the k nearest *matching* points" are different queries;
    /// applying it returns an error.
    PushFilterBelowSelect,
}

impl LogicalExpr {
    /// Applies a rewrite, returning the transformed expression when the
    /// rewrite is valid for this expression shape.
    ///
    /// # Errors
    ///
    /// * [`QueryError::InvalidTransformation`] for rewrites the paper proves
    ///   incorrect (inner-select pushdown, sequentialized selects);
    /// * [`QueryError::UnsupportedPlanShape`] if the expression does not have
    ///   the shape the rewrite expects.
    pub fn apply(&self, rewrite: Rewrite) -> Result<LogicalExpr, QueryError> {
        match rewrite {
            Rewrite::PushSelectBelowJoinInner => Err(QueryError::InvalidTransformation {
                reason: "pushing a kNN-select below the inner relation of a kNN-join is invalid: \
                         (E1 ⋈kNN E2) ∩ (E1 × σ(E2)) ≢ E1 ⋈kNN σ(E2) (Section 3, Figures 1–2)"
                    .to_string(),
            }),
            Rewrite::SequentializeTwoSelects => Err(QueryError::InvalidTransformation {
                reason: "two kNN-select predicates must be evaluated independently and \
                         intersected; feeding one select's output into the other changes the \
                         result (Section 5, Figures 14–16)"
                    .to_string(),
            }),
            Rewrite::PushSelectBelowJoinOuter => {
                // Expect: IntersectOnInner is not involved; the shape is a
                // select over the *outer* component expressed as
                // KnnJoin{outer: σ(E1), inner: E2} already, or an intersection
                // of a join with a select on the outer side. The canonical
                // shape we transform is:
                //   Intersect-like filter "outer ∈ σ(E1)" over KnnJoin(E1,E2)
                // which this algebra writes as
                //   KnnJoin { outer: KnnSelect(E1), inner: E2 }  (already pushed)
                // or as the un-pushed equivalent. For the un-pushed form we
                // accept `KnnJoin { outer: E1, inner: E2 }` wrapped in nothing
                // and refuse otherwise, so the useful direction is: given the
                // un-pushed composite, produce the pushed join.
                match self {
                    LogicalExpr::KnnJoin { outer, inner, k } => {
                        if let LogicalExpr::KnnSelect { .. } = **outer {
                            // Already pushed; idempotent.
                            return Ok(self.clone());
                        }
                        Err(QueryError::UnsupportedPlanShape {
                            description: format!(
                                "outer-select pushdown expects a kNN-select on the outer side; \
                                 found join with k={k} over {:?}/{:?}",
                                outer.kind(),
                                inner.kind()
                            ),
                        })
                    }
                    LogicalExpr::IntersectOnInner { .. } => Err(QueryError::UnsupportedPlanShape {
                        description:
                            "outer-select pushdown applies to a select on the outer component, \
                             not to ∩_B expressions"
                                .to_string(),
                    }),
                    _ => Err(QueryError::UnsupportedPlanShape {
                        description: "outer-select pushdown expects a kNN-join".to_string(),
                    }),
                }
            }
            Rewrite::PushFilterBelowJoinInner => Err(QueryError::InvalidTransformation {
                reason: "pushing a filter below the inner relation of a kNN-join is invalid: \
                         filter(E1 ⋈kNN E2) ≢ E1 ⋈kNN filter(E2) — reducing the inner relation \
                         changes every computed neighborhood (the Figure 2 argument)"
                    .to_string(),
            }),
            Rewrite::PushFilterBelowSelect => Err(QueryError::InvalidTransformation {
                reason: "moving a filter below a kNN-select changes the query: \
                         filter(σ_{k,f}(E)) keeps the matching members of the k nearest points, \
                         σ_{k,f}(filter(E)) returns the k nearest *matching* points — different \
                         answers whenever the filter removes a neighbor"
                    .to_string(),
            }),
            Rewrite::PushFilterBelowJoinOuter => match self {
                LogicalExpr::Filter { input, predicate } => match &**input {
                    LogicalExpr::KnnJoin { outer, inner, k } => Ok(LogicalExpr::KnnJoin {
                        outer: Box::new(outer.clone().filter(predicate.clone())),
                        inner: inner.clone(),
                        k: *k,
                    }),
                    _ => Err(QueryError::UnsupportedPlanShape {
                        description: "outer-filter pushdown expects a filter directly over a \
                                      kNN-join"
                            .to_string(),
                    }),
                },
                _ => Err(QueryError::UnsupportedPlanShape {
                    description: "outer-filter pushdown expects a filter expression".to_string(),
                }),
            },
            Rewrite::ReorderChainedJoins => match self {
                // (A ⋈ B) as outer of (· ⋈ C)  ⇄  A ⋈ (B ⋈ C): both orders are
                // legal; this rewrite just answers "is reordering allowed",
                // returning the expression unchanged.
                LogicalExpr::KnnJoin { .. } | LogicalExpr::IntersectOnInner { .. } => {
                    Ok(self.clone())
                }
                _ => Err(QueryError::UnsupportedPlanShape {
                    description: "chained-join reordering expects a join expression".to_string(),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn focal() -> Point {
        Point::anonymous(1.0, 2.0)
    }

    #[test]
    fn valid_shapes_pass_validation() {
        // Correct select-inner-join composite: join intersected with a select.
        let expr = LogicalExpr::relation("Mechanics")
            .knn_join(LogicalExpr::relation("Hotels"), 2)
            .intersect_on_inner(LogicalExpr::relation("Hotels").knn_select(2, focal()));
        expr.validate().unwrap();

        // Outer-select pushdown (valid).
        let expr = LogicalExpr::relation("Mechanics")
            .knn_select(2, focal())
            .knn_join(LogicalExpr::relation("Hotels"), 2);
        expr.validate().unwrap();

        // Two selects combined via intersection (Figure 16).
        let expr = LogicalExpr::relation("Houses")
            .knn_select(5, focal())
            .intersect(LogicalExpr::relation("Houses").knn_select(5, Point::anonymous(9.0, 9.0)));
        expr.validate().unwrap();
    }

    #[test]
    fn inner_select_pushdown_is_rejected() {
        let expr = LogicalExpr::relation("Mechanics")
            .knn_join(LogicalExpr::relation("Hotels").knn_select(2, focal()), 2);
        let err = expr.validate().unwrap_err();
        assert!(matches!(err, QueryError::InvalidTransformation { .. }));
    }

    #[test]
    fn select_over_select_is_rejected() {
        let expr = LogicalExpr::relation("Houses")
            .knn_select(5, focal())
            .knn_select(5, Point::anonymous(3.0, 3.0));
        assert!(matches!(
            expr.validate(),
            Err(QueryError::InvalidTransformation { .. })
        ));
    }

    #[test]
    fn zero_k_is_rejected() {
        let expr = LogicalExpr::relation("Houses").knn_select(0, focal());
        assert!(matches!(expr.validate(), Err(QueryError::ZeroK { .. })));
        let expr = LogicalExpr::relation("A").knn_join(LogicalExpr::relation("B"), 0);
        assert!(matches!(expr.validate(), Err(QueryError::ZeroK { .. })));
    }

    #[test]
    fn sequential_unchained_joins_are_rejected() {
        // (C ⋈ (A ⋈ B)'s B side) — modelled as a join whose inner carries a
        // kNN predicate.
        let ab = LogicalExpr::relation("A").knn_join(LogicalExpr::relation("B"), 2);
        let expr = LogicalExpr::relation("C").knn_join(ab, 2);
        assert!(expr.validate().is_err());
    }

    #[test]
    fn rewrites_report_validity() {
        let join = LogicalExpr::relation("Mechanics")
            .knn_select(2, focal())
            .knn_join(LogicalExpr::relation("Hotels"), 2);
        // Outer pushdown is accepted (idempotent here).
        assert!(join.apply(Rewrite::PushSelectBelowJoinOuter).is_ok());
        // The two forbidden rewrites always error with an explanation.
        let err = join.apply(Rewrite::PushSelectBelowJoinInner).unwrap_err();
        assert!(err.to_string().contains("inner"));
        let err = join.apply(Rewrite::SequentializeTwoSelects).unwrap_err();
        assert!(err.to_string().contains("independently"));
        // Chained reordering is allowed on joins.
        assert!(join.apply(Rewrite::ReorderChainedJoins).is_ok());
        // ...but not on a bare relation.
        assert!(LogicalExpr::relation("A")
            .apply(Rewrite::ReorderChainedJoins)
            .is_err());
    }

    fn region() -> Predicate {
        Predicate::InRect(twoknn_geometry::Rect::new(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn filters_validate_in_both_placements() {
        // Pre-kNN: filter below the select input (k nearest matching points).
        let expr = LogicalExpr::relation("Sites")
            .filter(region())
            .knn_select(5, focal());
        expr.validate().unwrap();

        // Post-kNN: filter over the select output.
        let expr = LogicalExpr::relation("Sites")
            .knn_select(5, focal())
            .filter(region());
        expr.validate().unwrap();

        // Filter below the join's *outer* input is valid (Figure 3 analogue).
        let expr = LogicalExpr::relation("Stations")
            .filter(region())
            .knn_join(LogicalExpr::relation("Vehicles"), 2);
        expr.validate().unwrap();

        // Post-filter over pair output is valid.
        let expr = LogicalExpr::relation("Stations")
            .knn_join(LogicalExpr::relation("Vehicles"), 2)
            .filter(region());
        expr.validate().unwrap();
    }

    #[test]
    fn filter_below_join_inner_is_rejected() {
        let expr = LogicalExpr::relation("Stations")
            .knn_join(LogicalExpr::relation("Vehicles").filter(region()), 2);
        let err = expr.validate().unwrap_err();
        assert!(matches!(err, QueryError::InvalidTransformation { .. }));
        assert!(err.to_string().contains("inner"));
    }

    #[test]
    fn filter_rewrites_report_validity() {
        let joined = LogicalExpr::relation("Stations")
            .knn_join(LogicalExpr::relation("Vehicles"), 2)
            .filter(region());
        // The valid direction: post-filter on a join pushes to the outer.
        let pushed = joined.apply(Rewrite::PushFilterBelowJoinOuter).unwrap();
        assert_eq!(
            pushed,
            LogicalExpr::relation("Stations")
                .filter(region())
                .knn_join(LogicalExpr::relation("Vehicles"), 2)
        );
        pushed.validate().unwrap();

        // Both forbidden directions error with an explanation.
        let err = joined.apply(Rewrite::PushFilterBelowJoinInner).unwrap_err();
        assert!(matches!(err, QueryError::InvalidTransformation { .. }));
        let post = LogicalExpr::relation("Sites")
            .knn_select(5, focal())
            .filter(region());
        let err = post.apply(Rewrite::PushFilterBelowSelect).unwrap_err();
        assert!(err.to_string().contains("matching"));

        // Shape mismatch is reported as such, not as invalidity.
        assert!(matches!(
            LogicalExpr::relation("A").apply(Rewrite::PushFilterBelowJoinOuter),
            Err(QueryError::UnsupportedPlanShape { .. })
        ));
    }

    #[test]
    fn display_prints_the_algebra() {
        let expr = LogicalExpr::relation("Sites")
            .filter(region())
            .knn_select(5, focal());
        assert_eq!(
            expr.to_string(),
            "σ[k=5, f=(1, 2)](filter[INSIDE(RECT(0, 0, 10, 10))](Sites))"
        );
        let join = LogicalExpr::relation("A").knn_join(LogicalExpr::relation("B"), 2);
        assert_eq!(join.to_string(), "(A ⋈[k=2] B)");
    }

    #[test]
    fn predicate_counting_and_kinds() {
        let expr = LogicalExpr::relation("A")
            .knn_join(LogicalExpr::relation("B"), 2)
            .intersect_on_inner(LogicalExpr::relation("B").knn_select(3, focal()));
        assert_eq!(expr.num_knn_predicates(), 2);
        assert_eq!(expr.kind(), ExprKind::Pairs);
        assert_eq!(LogicalExpr::relation("A").kind(), ExprKind::Points);
    }
}
