//! Per-relation statistics used by the optimizer.
//!
//! All statistics are derived from block metadata only (counts and
//! footprints), so profiling a relation is `O(number of blocks)` and never
//! touches the points themselves — matching the paper's assumption that the
//! index maintains per-block counts.
//!
//! [`RelationProfile::compute`] works on any [`SpatialIndex`]; for versioned
//! relations prefer
//! [`RelationSnapshot::profile`](crate::store::RelationSnapshot::profile),
//! which memoizes the result per published snapshot — statistics of an
//! immutable version never change, so planning a whole batch against one
//! pinned snapshot pays for at most one computation per relation.

use twoknn_index::SpatialIndex;

/// Summary statistics of an indexed relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelationProfile {
    /// Total number of points.
    pub num_points: usize,
    /// Total number of blocks in the index.
    pub num_blocks: usize,
    /// Number of blocks holding at least one point.
    pub occupied_blocks: usize,
    /// Fraction of the relation's extent covered by occupied blocks
    /// (≈ 1 for uniform data, ≪ 1 for clustered data).
    pub coverage_fraction: f64,
    /// Average number of points per occupied block.
    pub avg_points_per_occupied_block: f64,
    /// Largest per-block count.
    pub max_block_count: usize,
    /// Skew indicator: fraction of all points held by the top 10% most
    /// populated blocks (0.1 for perfectly uniform data, → 1 for extreme
    /// clustering).
    pub top_decile_share: f64,
}

impl RelationProfile {
    /// Computes the profile of an indexed relation.
    pub fn compute<I: SpatialIndex + ?Sized>(index: &I) -> Self {
        let blocks = index.blocks();
        let num_blocks = blocks.len();
        let num_points = index.num_points();
        let occupied_blocks = blocks.iter().filter(|b| b.count > 0).count();
        let total_area = index.bounds().area();
        let covered_area: f64 = blocks
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| b.mbr.area())
            .sum();
        let coverage_fraction = if total_area > 0.0 {
            (covered_area / total_area).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let avg_points_per_occupied_block = if occupied_blocks > 0 {
            num_points as f64 / occupied_blocks as f64
        } else {
            0.0
        };
        let max_block_count = blocks.iter().map(|b| b.count).max().unwrap_or(0);

        let mut counts: Vec<usize> = blocks.iter().map(|b| b.count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let decile = (num_blocks.max(1)).div_ceil(10);
        let top_decile: usize = counts.iter().take(decile).sum();
        let top_decile_share = if num_points > 0 {
            top_decile as f64 / num_points as f64
        } else {
            0.0
        };

        Self {
            num_points,
            num_blocks,
            occupied_blocks,
            coverage_fraction,
            avg_points_per_occupied_block,
            max_block_count,
            top_decile_share,
        }
    }

    /// Whether the relation looks uniformly distributed (high coverage of the
    /// extent by occupied blocks).
    pub fn looks_uniform(&self, coverage_threshold: f64) -> bool {
        self.coverage_fraction >= coverage_threshold
    }

    /// Whether the relation looks clustered.
    pub fn looks_clustered(&self, coverage_threshold: f64) -> bool {
        !self.looks_uniform(coverage_threshold)
    }

    /// Average density in points per unit of occupied area (0 when empty).
    pub fn occupied_density(&self) -> f64 {
        if self.coverage_fraction <= 0.0 {
            return 0.0;
        }
        self.avg_points_per_occupied_block
    }
}

impl std::fmt::Display for RelationProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} blocks={}/{} coverage={:.2} avg/block={:.1} max/block={} top10%={:.2}",
            self.num_points,
            self.occupied_blocks,
            self.num_blocks,
            self.coverage_fraction,
            self.avg_points_per_occupied_block,
            self.max_block_count,
            self.top_decile_share
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_geometry::{Point, Rect};
    use twoknn_index::GridIndex;

    fn uniform(n: usize) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(i as u64, (h % 100) as f64, ((h / 100) % 100) as f64)
            })
            .collect();
        GridIndex::build_with_bounds(pts, Rect::new(0.0, 0.0, 100.0, 100.0), 10).unwrap()
    }

    fn clustered(n: usize) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    5.0 + (i % 30) as f64 * 0.05,
                    5.0 + (i as u64 / 30) as f64 * 0.05,
                )
            })
            .collect();
        GridIndex::build_with_bounds(pts, Rect::new(0.0, 0.0, 100.0, 100.0), 10).unwrap()
    }

    #[test]
    fn profiles_distinguish_uniform_from_clustered() {
        let u = RelationProfile::compute(&uniform(3000));
        let c = RelationProfile::compute(&clustered(3000));
        assert!(u.looks_uniform(0.6), "{u}");
        assert!(c.looks_clustered(0.6), "{c}");
        assert!(c.top_decile_share > u.top_decile_share);
        assert!(c.max_block_count > u.max_block_count);
    }

    #[test]
    fn totals_are_consistent() {
        let g = uniform(500);
        let p = RelationProfile::compute(&g);
        assert_eq!(p.num_points, 500);
        assert_eq!(p.num_blocks, 100);
        assert!(p.occupied_blocks <= p.num_blocks);
        assert!(p.avg_points_per_occupied_block >= 1.0);
        assert!(p.top_decile_share > 0.0 && p.top_decile_share <= 1.0);
    }

    #[test]
    fn empty_relation_profile_is_sane() {
        let g = GridIndex::build_with_bounds(vec![], Rect::new(0.0, 0.0, 1.0, 1.0), 4).unwrap();
        let p = RelationProfile::compute(&g);
        assert_eq!(p.num_points, 0);
        assert_eq!(p.occupied_blocks, 0);
        assert_eq!(p.coverage_fraction, 0.0);
        assert_eq!(p.top_decile_share, 0.0);
        assert_eq!(p.occupied_density(), 0.0);
    }

    #[test]
    fn display_is_single_line() {
        let p = RelationProfile::compute(&uniform(100));
        assert!(!p.to_string().contains('\n'));
    }
}
