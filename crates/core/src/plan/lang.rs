//! The declarative textual query front-end.
//!
//! A hand-written lexer and recursive-descent parser (no dependencies) for
//! a small `FIND … WHERE …` language over the catalog's relations, plus the
//! rewriter that turns the parsed [`Query`] into an executable
//! [`QuerySpec`]. Errors carry byte spans and render caret-style
//! ([`ParseError`]).
//!
//! # Grammar
//!
//! ```text
//! query     := FIND source WHERE condition
//! source    := IDENT                          -- plain relation
//!            | '(' IDENT WHERE condition ')'  -- pre-kNN filtered relation
//! condition := and_cond (OR and_cond)*
//! and_cond  := unary (AND unary)*
//! unary     := NOT unary | atom
//! atom      := TRUE | FALSE
//!            | KNN '(' k ',' x ',' y ')'
//!            | INSIDE '(' RECT '(' x1 ',' y1 ',' x2 ',' y2 ')' ')'
//!            | INSIDE '(' CIRCLE '(' x ',' y ',' r ')' ')'
//!            | ID IN '(' n (',' n)* ')'
//!            | ID BETWEEN n AND n
//!            | ID '<=' n | ID '>=' n | ID '=' n
//!            | '(' condition ')'
//! ```
//!
//! Keywords are case-insensitive; relation names are case-sensitive.
//!
//! # Filter placement
//!
//! The placement of a relational filter relative to the kNN predicates is
//! **semantics-bearing** (Section 3 of the paper), so the language makes it
//! explicit:
//!
//! * a condition inside the *source* parentheses is a **pre-kNN** filter —
//!   the kNN predicates see only matching points ("the k nearest
//!   *matching* sites");
//! * a non-kNN condition in the main `WHERE` clause is a **post-kNN**
//!   residual — it prunes the finished kNN result rows.
//!
//! `KNN` predicates must be top-level conjuncts of the main `WHERE` clause
//! (not under `OR` or `NOT`, and never in the source filter): a
//! disjunctive or negated kNN predicate has no well-defined pushdown, so
//! the rewriter refuses it with a spanned error. One `KNN` conjunct
//! produces a [`QuerySpec::KnnSelect`], two produce a
//! [`QuerySpec::TwoSelects`] (the conceptual intersection of Figure 16);
//! filters wrap the result as [`QuerySpec::Filtered`].

use twoknn_geometry::{Point, Predicate, Rect};

use crate::error::ParseError;
use crate::plan::executor::{QueryFilters, QuerySpec};
use crate::plan::logical::LogicalExpr;
use crate::select::KnnSelectQuery;
use crate::selects2::TwoSelectsQuery;

/// A byte span `[start, end)` into the query text.
pub type Span = (usize, usize);

/// A parsed (but not yet rewritten) textual query.
#[derive(Debug, Clone)]
pub struct Query {
    /// The relation named in the `FIND` source.
    pub relation: String,
    /// The pre-kNN filter of a parenthesized source, if any.
    pub source_filter: Option<Cond>,
    /// The main `WHERE` condition (kNN predicates still embedded).
    pub condition: Cond,
    /// Byte span of the main condition (for rewriter diagnostics).
    pub condition_span: Span,
}

impl PartialEq for Query {
    fn eq(&self, other: &Self) -> bool {
        // Spans are positions, not meaning: two queries are equal when
        // their relation and conditions are — which is what the
        // parse → print → parse round-trip preserves.
        self.relation == other.relation
            && self.source_filter == other.source_filter
            && self.condition == other.condition
    }
}

/// A condition-tree node of the query language.
#[derive(Debug, Clone)]
pub enum Cond {
    /// `TRUE`.
    True,
    /// `FALSE`.
    False,
    /// `KNN(k, x, y)`: among the `k` nearest to the focal point `(x, y)`.
    Knn {
        /// Number of neighbors.
        k: usize,
        /// Focal x coordinate.
        x: f64,
        /// Focal y coordinate.
        y: f64,
        /// Span of the whole `KNN(...)` atom, for rewriter diagnostics.
        span: Span,
    },
    /// `INSIDE(RECT(x1, y1, x2, y2))`: closed containment in a rectangle.
    InRect {
        /// Lower-left x.
        x1: f64,
        /// Lower-left y.
        y1: f64,
        /// Upper-right x.
        x2: f64,
        /// Upper-right y.
        y2: f64,
    },
    /// `INSIDE(CIRCLE(x, y, r))`: within distance `r` of `(x, y)`.
    InCircle {
        /// Center x.
        x: f64,
        /// Center y.
        y: f64,
        /// Radius.
        r: f64,
    },
    /// `ID IN (a, b, …)`.
    IdIn(Vec<u64>),
    /// `ID BETWEEN lo AND hi` (inclusive; also produced by `ID <=`, `ID >=`
    /// and `ID =`).
    IdBetween {
        /// Lowest matching id.
        lo: u64,
        /// Highest matching id.
        hi: u64,
    },
    /// Conjunction of two or more conditions.
    And(Vec<Cond>),
    /// Disjunction of two or more conditions.
    Or(Vec<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl PartialEq for Cond {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Cond::True, Cond::True) | (Cond::False, Cond::False) => true,
            (
                Cond::Knn { k, x, y, .. },
                Cond::Knn {
                    k: k2,
                    x: x2,
                    y: y2,
                    ..
                },
            ) => k == k2 && x == x2 && y == y2,
            (
                Cond::InRect { x1, y1, x2, y2 },
                Cond::InRect {
                    x1: a,
                    y1: b,
                    x2: c,
                    y2: d,
                },
            ) => x1 == a && y1 == b && x2 == c && y2 == d,
            (Cond::InCircle { x, y, r }, Cond::InCircle { x: a, y: b, r: c }) => {
                x == a && y == b && r == c
            }
            (Cond::IdIn(a), Cond::IdIn(b)) => a == b,
            (Cond::IdBetween { lo, hi }, Cond::IdBetween { lo: a, hi: b }) => lo == a && hi == b,
            (Cond::And(a), Cond::And(b)) | (Cond::Or(a), Cond::Or(b)) => a == b,
            (Cond::Not(a), Cond::Not(b)) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cond::True => write!(f, "TRUE"),
            Cond::False => write!(f, "FALSE"),
            Cond::Knn { k, x, y, .. } => write!(f, "KNN({k}, {x}, {y})"),
            Cond::InRect { x1, y1, x2, y2 } => {
                write!(f, "INSIDE(RECT({x1}, {y1}, {x2}, {y2}))")
            }
            Cond::InCircle { x, y, r } => write!(f, "INSIDE(CIRCLE({x}, {y}, {r}))"),
            Cond::IdIn(ids) => {
                write!(f, "ID IN (")?;
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{id}")?;
                }
                write!(f, ")")
            }
            Cond::IdBetween { lo, hi } => write!(f, "ID BETWEEN {lo} AND {hi}"),
            Cond::And(items) | Cond::Or(items) => {
                let sep = if matches!(self, Cond::And(_)) {
                    " AND "
                } else {
                    " OR "
                };
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "{sep}")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Cond::Not(inner) => write!(f, "(NOT {inner})"),
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.source_filter {
            Some(filter) => write!(
                f,
                "FIND ({} WHERE {}) WHERE {}",
                self.relation, filter, self.condition
            ),
            None => write!(f, "FIND {} WHERE {}", self.relation, self.condition),
        }
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    LParen,
    RParen,
    Comma,
    Le,
    Ge,
    Eq,
    Find,
    Where,
    And,
    Or,
    Not,
    Knn,
    Inside,
    Rect,
    Circle,
    Id,
    In,
    Between,
    True,
    False,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("identifier `{name}`"),
            Tok::Number(n) => format!("number `{n}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Eof => "end of query".into(),
            keyword => format!("`{keyword:?}`").to_uppercase(),
        }
    }
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    span: Span,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word.to_ascii_uppercase().as_str() {
        "FIND" => Tok::Find,
        "WHERE" => Tok::Where,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "NOT" => Tok::Not,
        "KNN" => Tok::Knn,
        "INSIDE" => Tok::Inside,
        "RECT" => Tok::Rect,
        "CIRCLE" => Tok::Circle,
        "ID" => Tok::Id,
        "IN" => Tok::In,
        "BETWEEN" => Tok::Between,
        "TRUE" => Tok::True,
        "FALSE" => Tok::False,
        _ => return None,
    })
}

fn lex(text: &str) -> Result<Vec<Token>, ParseError> {
    let err = |start: usize, end: usize, message: String| ParseError {
        message,
        query: text.to_string(),
        start,
        end,
    };
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' | b')' | b',' | b'=' => {
                let tok = match b {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b',' => Tok::Comma,
                    _ => Tok::Eq,
                };
                i += 1;
                tokens.push(Token {
                    tok,
                    span: (start, i),
                });
            }
            b'<' | b'>' => {
                if bytes.get(i + 1) != Some(&b'=') {
                    return Err(err(start, start + 1, format!("expected `{}=`", b as char)));
                }
                i += 2;
                tokens.push(Token {
                    tok: if b == b'<' { Tok::Le } else { Tok::Ge },
                    span: (start, i),
                });
            }
            b'-' | b'0'..=b'9' | b'.' => {
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'_')
                {
                    i += 1;
                }
                let slice = text[start..i].replace('_', "");
                let value: f64 = slice
                    .parse()
                    .map_err(|_| err(start, i, format!("`{}` is not a number", &text[start..i])))?;
                tokens.push(Token {
                    tok: Tok::Number(value),
                    span: (start, i),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &text[start..i];
                let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
                tokens.push(Token {
                    tok,
                    span: (start, i),
                });
            }
            _ => {
                return Err(err(
                    start,
                    start + 1,
                    format!("unexpected character `{}`", &text[start..start + 1]),
                ));
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: (text.len(), text.len()),
    });
    Ok(tokens)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    text: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn err(&self, span: Span, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            query: self.text.to_string(),
            start: span.0,
            end: span.1,
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<Token, ParseError> {
        let token = self.peek().clone();
        if token.tok == want {
            Ok(self.bump())
        } else {
            Err(self.err(
                token.span,
                format!("expected {what}, found {}", token.tok.describe()),
            ))
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        let token = self.peek().clone();
        match token.tok {
            Tok::Number(value) => {
                self.bump();
                Ok(value)
            }
            other => Err(self.err(
                token.span,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    /// A non-negative integer literal, parsed from the raw text so 64-bit
    /// ids survive exactly.
    fn integer(&mut self, what: &str) -> Result<u64, ParseError> {
        let token = self.peek().clone();
        if !matches!(token.tok, Tok::Number(_)) {
            return Err(self.err(
                token.span,
                format!("expected {what}, found {}", token.tok.describe()),
            ));
        }
        let raw = self.text[token.span.0..token.span.1].replace('_', "");
        let value: u64 = raw.parse().map_err(|_| {
            self.err(
                token.span,
                format!("{what} must be a non-negative integer, found `{raw}`"),
            )
        })?;
        self.bump();
        Ok(value)
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect(Tok::Find, "`FIND`")?;
        let (relation, source_filter) = self.source()?;
        self.expect(Tok::Where, "`WHERE`")?;
        let start = self.peek().span.0;
        let condition = self.condition()?;
        let end = self.tokens[self.pos.saturating_sub(1)].span.1;
        let eof = self.peek().clone();
        if eof.tok != Tok::Eof {
            return Err(self.err(
                eof.span,
                format!("expected end of query, found {}", eof.tok.describe()),
            ));
        }
        Ok(Query {
            relation,
            source_filter,
            condition,
            condition_span: (start, end),
        })
    }

    fn source(&mut self) -> Result<(String, Option<Cond>), ParseError> {
        let token = self.peek().clone();
        match token.tok {
            Tok::Ident(name) => {
                self.bump();
                Ok((name, None))
            }
            Tok::LParen => {
                self.bump();
                let name = match self.peek().clone() {
                    Token {
                        tok: Tok::Ident(name),
                        ..
                    } => {
                        self.bump();
                        name
                    }
                    other => {
                        return Err(self.err(
                            other.span,
                            format!("expected a relation name, found {}", other.tok.describe()),
                        ))
                    }
                };
                self.expect(Tok::Where, "`WHERE`")?;
                let filter = self.condition()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok((name, Some(filter)))
            }
            other => Err(self.err(
                token.span,
                format!(
                    "expected a relation name or `(relation WHERE …)`, found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn condition(&mut self) -> Result<Cond, ParseError> {
        let mut items = vec![self.and_cond()?];
        while self.peek().tok == Tok::Or {
            self.bump();
            items.push(self.and_cond()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Cond::Or(items)
        })
    }

    fn and_cond(&mut self) -> Result<Cond, ParseError> {
        let mut items = vec![self.unary()?];
        while self.peek().tok == Tok::And {
            self.bump();
            items.push(self.unary()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Cond::And(items)
        })
    }

    fn unary(&mut self) -> Result<Cond, ParseError> {
        if self.peek().tok == Tok::Not {
            self.bump();
            return Ok(Cond::Not(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Cond, ParseError> {
        let token = self.peek().clone();
        match token.tok {
            Tok::True => {
                self.bump();
                Ok(Cond::True)
            }
            Tok::False => {
                self.bump();
                Ok(Cond::False)
            }
            Tok::LParen => {
                self.bump();
                let inner = self.condition()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Tok::Knn => {
                let start = self.bump().span.0;
                self.expect(Tok::LParen, "`(`")?;
                let k_span = self.peek().span;
                let k = self.integer("KNN's k")?;
                if k == 0 {
                    return Err(self.err(k_span, "KNN's k must be at least 1"));
                }
                self.expect(Tok::Comma, "`,`")?;
                let x = self.number("the focal x coordinate")?;
                self.expect(Tok::Comma, "`,`")?;
                let y = self.number("the focal y coordinate")?;
                let end = self.expect(Tok::RParen, "`)`")?.span.1;
                Ok(Cond::Knn {
                    k: k as usize,
                    x,
                    y,
                    span: (start, end),
                })
            }
            Tok::Inside => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                let shape = self.peek().clone();
                let cond = match shape.tok {
                    Tok::Rect => {
                        self.bump();
                        self.expect(Tok::LParen, "`(`")?;
                        let x1 = self.number("a rectangle coordinate")?;
                        self.expect(Tok::Comma, "`,`")?;
                        let y1 = self.number("a rectangle coordinate")?;
                        self.expect(Tok::Comma, "`,`")?;
                        let x2 = self.number("a rectangle coordinate")?;
                        self.expect(Tok::Comma, "`,`")?;
                        let y2 = self.number("a rectangle coordinate")?;
                        self.expect(Tok::RParen, "`)`")?;
                        Cond::InRect { x1, y1, x2, y2 }
                    }
                    Tok::Circle => {
                        self.bump();
                        self.expect(Tok::LParen, "`(`")?;
                        let x = self.number("the circle center x")?;
                        self.expect(Tok::Comma, "`,`")?;
                        let y = self.number("the circle center y")?;
                        self.expect(Tok::Comma, "`,`")?;
                        let r = self.number("the circle radius")?;
                        self.expect(Tok::RParen, "`)`")?;
                        Cond::InCircle { x, y, r }
                    }
                    other => {
                        return Err(self.err(
                            shape.span,
                            format!("expected `RECT` or `CIRCLE`, found {}", other.describe()),
                        ))
                    }
                };
                self.expect(Tok::RParen, "`)`")?;
                Ok(cond)
            }
            Tok::Id => {
                self.bump();
                let op = self.peek().clone();
                match op.tok {
                    Tok::In => {
                        self.bump();
                        self.expect(Tok::LParen, "`(`")?;
                        let mut ids = vec![self.integer("an id")?];
                        while self.peek().tok == Tok::Comma {
                            self.bump();
                            ids.push(self.integer("an id")?);
                        }
                        self.expect(Tok::RParen, "`)`")?;
                        ids.sort_unstable();
                        ids.dedup();
                        Ok(Cond::IdIn(ids))
                    }
                    Tok::Between => {
                        self.bump();
                        let lo = self.integer("the lower id bound")?;
                        self.expect(Tok::And, "`AND`")?;
                        let hi = self.integer("the upper id bound")?;
                        Ok(Cond::IdBetween { lo, hi })
                    }
                    Tok::Le => {
                        self.bump();
                        let hi = self.integer("an id bound")?;
                        Ok(Cond::IdBetween { lo: 0, hi })
                    }
                    Tok::Ge => {
                        self.bump();
                        let lo = self.integer("an id bound")?;
                        Ok(Cond::IdBetween { lo, hi: u64::MAX })
                    }
                    Tok::Eq => {
                        self.bump();
                        let id = self.integer("an id")?;
                        Ok(Cond::IdIn(vec![id]))
                    }
                    other => Err(self.err(
                        op.span,
                        format!(
                            "expected `IN`, `BETWEEN`, `<=`, `>=` or `=` after `ID`, found {}",
                            other.describe()
                        ),
                    )),
                }
            }
            other => Err(self.err(
                token.span,
                format!("expected a predicate, found {}", other.describe()),
            )),
        }
    }
}

/// Parses query text into a [`Query`] AST (syntax only — see
/// [`Query::to_spec`] / [`parse_query`] for the rewrite to a
/// [`QuerySpec`]).
pub fn parse(text: &str) -> Result<Query, ParseError> {
    let tokens = lex(text)?;
    Parser {
        text,
        tokens,
        pos: 0,
    }
    .query()
}

/// Parses and rewrites query text into an executable [`QuerySpec`] — what
/// [`Database::query`](crate::plan::Database::query) runs.
pub fn parse_query(text: &str) -> Result<QuerySpec, ParseError> {
    parse(text)?.to_spec(text)
}

// ---------------------------------------------------------------------
// Rewriter
// ---------------------------------------------------------------------

/// The first `KNN` atom anywhere inside `cond`, if any.
fn find_knn(cond: &Cond) -> Option<Span> {
    match cond {
        Cond::Knn { span, .. } => Some(*span),
        Cond::And(items) | Cond::Or(items) => items.iter().find_map(find_knn),
        Cond::Not(inner) => find_knn(inner),
        _ => None,
    }
}

/// The top-level conjuncts of a condition, flattening nested `AND`s.
fn conjuncts(cond: &Cond) -> Vec<&Cond> {
    match cond {
        Cond::And(items) => items.iter().flat_map(conjuncts).collect(),
        other => vec![other],
    }
}

/// Converts a kNN-free condition tree into a [`Predicate`].
fn to_predicate(cond: &Cond) -> Predicate {
    match cond {
        Cond::True => Predicate::True,
        Cond::False => Predicate::False,
        Cond::Knn { .. } => unreachable!("kNN atoms are extracted before predicate conversion"),
        Cond::InRect { x1, y1, x2, y2 } => Predicate::InRect(Rect::new(*x1, *y1, *x2, *y2)),
        Cond::InCircle { x, y, r } => Predicate::InCircle {
            center: Point::anonymous(*x, *y),
            radius: *r,
        },
        Cond::IdIn(ids) => Predicate::id_in(ids.clone()),
        Cond::IdBetween { lo, hi } => Predicate::IdRange { lo: *lo, hi: *hi },
        Cond::And(items) => Predicate::And(items.iter().map(to_predicate).collect()),
        Cond::Or(items) => Predicate::Or(items.iter().map(to_predicate).collect()),
        Cond::Not(inner) => Predicate::Not(Box::new(to_predicate(inner))),
    }
}

impl Query {
    /// Rewrites the parsed query into an executable [`QuerySpec`]:
    /// extracts the top-level `KNN` conjuncts (one → kNN-select, two →
    /// two-kNN-selects), turns the source filter into a **pre**-kNN
    /// predicate and the remaining `WHERE` residue into a **post**-kNN
    /// predicate, and wraps the shape in [`QuerySpec::Filtered`] when any
    /// filter is non-trivial.
    ///
    /// `text` is the source the query was parsed from, kept only for the
    /// caret rendering of rewrite errors (kNN under `OR`/`NOT`, kNN in
    /// the source filter, zero or too many kNN predicates).
    pub fn to_spec(&self, text: &str) -> Result<QuerySpec, ParseError> {
        let err = |span: Span, message: &str| ParseError {
            message: message.into(),
            query: text.to_string(),
            start: span.0,
            end: span.1,
        };
        if let Some(filter) = &self.source_filter {
            if let Some(span) = find_knn(filter) {
                return Err(err(
                    span,
                    "a KNN predicate cannot appear in the source filter; write it in the \
                     main WHERE clause",
                ));
            }
        }
        let mut knns: Vec<(usize, Point, Span)> = Vec::new();
        let mut residual: Vec<&Cond> = Vec::new();
        for item in conjuncts(&self.condition) {
            match item {
                Cond::Knn { k, x, y, span } => {
                    knns.push((*k, Point::anonymous(*x, *y), *span));
                }
                other => {
                    if let Some(span) = find_knn(other) {
                        return Err(err(
                            span,
                            "a KNN predicate must be a top-level conjunct of the WHERE \
                             clause — under OR or NOT its pushdown is not well-defined",
                        ));
                    }
                    residual.push(other);
                }
            }
        }
        let spec = match knns.as_slice() {
            [] => {
                return Err(err(
                    self.condition_span,
                    "the WHERE clause needs at least one KNN predicate",
                ))
            }
            [(k, focal, _)] => QuerySpec::KnnSelect {
                relation: self.relation.clone(),
                query: KnnSelectQuery::new(*k, *focal),
            },
            [(k1, f1, _), (k2, f2, _)] => QuerySpec::TwoSelects {
                relation: self.relation.clone(),
                query: TwoSelectsQuery::new(*k1, *f1, *k2, *f2),
            },
            [_, _, third, ..] => {
                return Err(err(third.2, "at most two KNN predicates are supported"));
            }
        };
        let mut filters = QueryFilters::none();
        if let Some(filter) = &self.source_filter {
            let predicate = to_predicate(filter);
            if !matches!(predicate, Predicate::True) {
                filters = filters.pre(self.relation.clone(), predicate);
            }
        }
        if !residual.is_empty() {
            let predicate = residual
                .into_iter()
                .map(to_predicate)
                .reduce(|acc, p| acc.and(p))
                .expect("non-empty residual");
            if !matches!(predicate, Predicate::True) {
                filters = filters.post(self.relation.clone(), predicate);
            }
        }
        let spec = spec.with_filters(filters);
        // The textual grammar can only express select shapes, whose filter
        // placements are always valid — the logical-algebra bridge agrees.
        debug_assert!(self.to_logical().validate().is_ok());
        Ok(spec)
    }

    /// The query as a [`LogicalExpr`] tree — the algebra the validator and
    /// rewrite rules of [`crate::plan::logical`] operate on. The source
    /// filter becomes a [`Predicate`] filter *below* each kNN-select (the
    /// valid pre-kNN placement); the residual becomes a filter *above*
    /// the result.
    pub fn to_logical(&self) -> LogicalExpr {
        let base = || {
            let relation = LogicalExpr::relation(self.relation.clone());
            match &self.source_filter {
                Some(filter) => relation.filter(to_predicate(filter)),
                None => relation,
            }
        };
        let mut knns: Vec<(usize, Point)> = Vec::new();
        let mut residual: Vec<Predicate> = Vec::new();
        for item in conjuncts(&self.condition) {
            match item {
                Cond::Knn { k, x, y, .. } => knns.push((*k, Point::anonymous(*x, *y))),
                other if find_knn(other).is_none() => residual.push(to_predicate(other)),
                _ => {}
            }
        }
        let mut expr = match knns.as_slice() {
            [(k, focal)] => base().knn_select(*k, *focal),
            [(k1, f1), (k2, f2), ..] => LogicalExpr::Intersect {
                left: Box::new(base().knn_select(*k1, *f1)),
                right: Box::new(base().knn_select(*k2, *f2)),
            },
            [] => base(),
        };
        if let Some(predicate) = residual.into_iter().reduce(|acc, p| acc.and(p)) {
            expr = expr.filter(predicate);
        }
        expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_single_select_with_filters() {
        let text = "FIND (Sites WHERE INSIDE(RECT(0, 0, 50, 50))) \
                    WHERE KNN(4, 10, 10) AND ID <= 100";
        let spec = parse_query(text).unwrap();
        match spec {
            QuerySpec::Filtered { spec, filters } => {
                match *spec {
                    QuerySpec::KnnSelect { relation, query } => {
                        assert_eq!(relation, "Sites");
                        assert_eq!(query.k, 4);
                        assert_eq!((query.focal.x, query.focal.y), (10.0, 10.0));
                    }
                    other => panic!("expected a kNN-select, got {other:?}"),
                }
                assert!(matches!(filters.pre["Sites"], Predicate::InRect(_)));
                assert_eq!(filters.post["Sites"], Predicate::IdRange { lo: 0, hi: 100 });
            }
            other => panic!("expected a filtered spec, got {other:?}"),
        }
    }

    #[test]
    fn two_knn_conjuncts_become_two_selects() {
        let spec = parse_query("FIND Hotels WHERE KNN(5, 0, 0) AND KNN(9, 30, 40)").unwrap();
        match spec {
            QuerySpec::TwoSelects { relation, query } => {
                assert_eq!(relation, "Hotels");
                assert_eq!((query.k1, query.k2), (5, 9));
                assert_eq!((query.f2.x, query.f2.y), (30.0, 40.0));
            }
            other => panic!("expected two-selects, got {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_insensitive_and_ids_are_exact() {
        let spec =
            parse_query("find Sites where knn(2, 1, 1) and id in (18446744073709551615)").unwrap();
        match spec {
            QuerySpec::Filtered { filters, .. } => {
                assert_eq!(filters.post["Sites"], Predicate::id_in(vec![u64::MAX]));
            }
            other => panic!("expected a filtered spec, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_the_offending_span() {
        let err = parse("FIND Sites WHERE KNN(5, 10 20)").unwrap_err();
        assert_eq!(&err.query[err.start..err.end], "20");
        assert!(err.message.contains("expected `,`"), "{}", err.message);

        let err = parse("FIND Sites WHERE KNN(0, 1, 2)").unwrap_err();
        assert_eq!(&err.query[err.start..err.end], "0");
        assert!(err.message.contains("at least 1"));

        let err = parse("FIND WHERE KNN(1, 0, 0)").unwrap_err();
        assert!(err.message.contains("relation name"), "{}", err.message);

        let err = parse("FIND Sites WHERE ID ! 3").unwrap_err();
        assert!(
            err.message.contains("unexpected character"),
            "{}",
            err.message
        );

        // The caret rendering shows the span under the query line.
        let rendered = parse("FIND Sites WHERE KNN(5, 10 20)")
            .unwrap_err()
            .to_string();
        assert!(rendered.lines().count() == 3 && rendered.ends_with("^^"));
    }

    #[test]
    fn rewriter_refuses_misplaced_knn_predicates() {
        let err = parse_query("FIND Sites WHERE KNN(3, 0, 0) OR TRUE").unwrap_err();
        assert!(
            err.message.contains("top-level conjunct"),
            "{}",
            err.message
        );
        assert_eq!(&err.query[err.start..err.end], "KNN(3, 0, 0)");

        let err = parse_query("FIND Sites WHERE NOT KNN(3, 0, 0)").unwrap_err();
        assert!(err.message.contains("top-level conjunct"));

        let err = parse_query("FIND (Sites WHERE KNN(2, 1, 1)) WHERE KNN(3, 0, 0)").unwrap_err();
        assert!(err.message.contains("source filter"), "{}", err.message);

        let err = parse_query("FIND Sites WHERE TRUE").unwrap_err();
        assert!(err.message.contains("at least one KNN"), "{}", err.message);

        let err = parse_query("FIND Sites WHERE KNN(1, 0, 0) AND KNN(1, 1, 1) AND KNN(1, 2, 2)")
            .unwrap_err();
        assert!(err.message.contains("at most two"), "{}", err.message);
        assert_eq!(&err.query[err.start..err.end], "KNN(1, 2, 2)");
    }

    #[test]
    fn logical_bridge_builds_a_valid_algebra() {
        let q = parse("FIND (Sites WHERE ID <= 10) WHERE KNN(3, 1, 2) AND ID >= 4").unwrap();
        let expr = q.to_logical();
        expr.validate().unwrap();
        let printed = expr.to_string();
        assert!(printed.contains("σ[k=3, f=(1, 2)]"), "{printed}");
        assert!(printed.contains("filter["), "{printed}");
    }

    // ------------------------------------------------------------------
    // Seeded parse → print → parse round-trip
    // ------------------------------------------------------------------

    /// A tiny deterministic generator (xorshift64) — no external
    /// property-testing dependency, same failures on every run.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        /// A coordinate on a quarter-unit lattice: exactly representable,
        /// so printing and reparsing reproduce the same bits.
        fn coord(&mut self) -> f64 {
            self.below(4001) as f64 * 0.25 - 500.0
        }
    }

    fn gen_leaf(rng: &mut Rng) -> Cond {
        match rng.below(6) {
            0 => Cond::True,
            1 => Cond::False,
            2 => {
                let (x1, y1) = (rng.coord(), rng.coord());
                Cond::InRect {
                    x1,
                    y1,
                    x2: x1 + rng.below(100) as f64,
                    y2: y1 + rng.below(100) as f64,
                }
            }
            3 => Cond::InCircle {
                x: rng.coord(),
                y: rng.coord(),
                r: rng.below(200) as f64 * 0.5,
            },
            4 => {
                let mut ids: Vec<u64> = (0..1 + rng.below(4)).map(|_| rng.below(10_000)).collect();
                ids.sort_unstable();
                ids.dedup();
                Cond::IdIn(ids)
            }
            _ => {
                let lo = rng.below(5_000);
                Cond::IdBetween {
                    lo,
                    hi: lo + rng.below(5_000),
                }
            }
        }
    }

    fn gen_cond(rng: &mut Rng, depth: u32) -> Cond {
        if depth == 0 {
            return gen_leaf(rng);
        }
        match rng.below(4) {
            0 => Cond::And(
                (0..2 + rng.below(2))
                    .map(|_| gen_cond(rng, depth - 1))
                    .collect(),
            ),
            1 => Cond::Or(
                (0..2 + rng.below(2))
                    .map(|_| gen_cond(rng, depth - 1))
                    .collect(),
            ),
            2 => Cond::Not(Box::new(gen_cond(rng, depth - 1))),
            _ => gen_leaf(rng),
        }
    }

    fn gen_query(rng: &mut Rng) -> Query {
        let relations = ["Sites", "Vehicles", "Hotels", "R_2"];
        let relation = relations[rng.below(4) as usize].to_string();
        let mut items: Vec<Cond> = (0..1 + rng.below(2))
            .map(|_| Cond::Knn {
                k: 1 + rng.below(20) as usize,
                x: rng.coord(),
                y: rng.coord(),
                span: (0, 0),
            })
            .collect();
        for _ in 0..rng.below(3) {
            items.push(gen_cond(rng, 2));
        }
        let condition = if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Cond::And(items)
        };
        let source_filter = (rng.below(2) == 0).then(|| gen_cond(rng, 1));
        Query {
            relation,
            source_filter,
            condition,
            condition_span: (0, 0),
        }
    }

    #[test]
    fn seeded_parse_print_parse_round_trip() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for i in 0..200 {
            let query = gen_query(&mut rng);
            let text = query.to_string();
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("iteration {i}:\n{e}"));
            // AST round-trip (span-insensitive equality) and a stable print.
            assert_eq!(reparsed, query, "iteration {i}: `{text}`");
            assert_eq!(reparsed.to_string(), text, "iteration {i}");
            // The rewrite to an executable spec agrees on both sides.
            assert_eq!(
                reparsed.to_spec(&text).unwrap(),
                query.to_spec(&text).unwrap(),
                "iteration {i}: `{text}`"
            );
        }
    }
}
