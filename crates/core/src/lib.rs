//! # twoknn-core
//!
//! Query processing with **two kNN predicates** — the Rust reproduction of
//! *"Spatial Queries with Two kNN Predicates"* (Aly, Aref, Ouzzani — VLDB
//! 2012).
//!
//! The paper's central observation is that queries combining two kNN
//! predicates (kNN-select `σ_{k,f}` and kNN-join `⋈_kNN`) cannot be optimized
//! with the classical relational heuristics: pushing a kNN-select below the
//! *inner* relation of a kNN-join, or evaluating two kNN-joins / two
//! kNN-selects one after the other, silently changes the query's result. For
//! every combination of two predicates the paper gives the *conceptually
//! correct* query evaluation plan (QEP) and a faster algorithm that preserves
//! its semantics:
//!
//! | Query shape | Correct QEP | Paper's algorithm(s) | Module |
//! |---|---|---|---|
//! | kNN-select on the **inner** relation of a kNN-join | join, then intersect | Counting, Block-Marking | [`select_join`] |
//! | kNN-select on the **outer** relation of a kNN-join | pushdown is valid | select-pushdown | [`select_join`] |
//! | two **unchained** kNN-joins | independent joins + `∩_B` | Block-Marking (Candidate/Safe blocks) | [`joins2`] |
//! | two **chained** kNN-joins | three equivalent QEPs | Nested-Join QEP + neighborhood cache | [`joins2`] |
//! | two kNN-selects | independent selects + `∩` | 2-kNN-select (bounded locality) | [`selects2`] |
//!
//! The single-predicate building blocks live in [`select`] and [`join`]; the
//! [`plan`] module provides a small logical-plan layer with the equivalence
//! rules of the paper (what may and may not be pushed down), per-relation
//! statistics, and an optimizer that picks between the algorithms using the
//! paper's own heuristics (Sections 3.3 and 4.1.2).
//!
//! All algorithms are generic over any [`twoknn_index::SpatialIndex`]
//! (grid, quadtree, or R-tree) and report machine-independent
//! [`twoknn_index::Metrics`] describing the work they performed.
//!
//! Around the algorithms, the crate provides the infrastructure of a small
//! spatial database:
//!
//! | Module | Role |
//! |---|---|
//! | [`plan`] | logical plans, statistics, optimizer, physical operators, and the [`plan::Database`] driver |
//! | [`store`] | versioned relation store: spatially sharded relations, snapshot reads, delta ingest, per-shard background rebuilds on the worker pool, and the optional durability subsystem (WAL + immutable shard block files + crash recovery, [`DurabilityConfig`]) |
//! | [`cq`] | continuous queries: standing two-kNN queries, guard-region registry, incremental maintenance over ingest |
//! | [`exec`] | execution modes and the persistent [`WorkerPool`] shared by batches, operators, and compactions |
//! | [`obs`] | observability: `EXPLAIN` / `EXPLAIN ANALYZE` plan introspection, per-operator execution traces, and the latency-histogram metrics registry with lifecycle events ([`TraceConfig`]) |
//! | [`output`] | typed result rows ([`Pair`], [`Triplet`]) and the output container |
//! | [`error`] | the [`QueryError`] taxonomy |
//!
//! ## Example: the paper's motivating query (Section 1)
//!
//! "From the list of mechanic shops and the two closest hotels to each
//! mechanic shop, report the (mechanic shop, hotel) pairs, where the hotel is
//! amongst the two closest neighbors of the shopping center."
//!
//! ```
//! use twoknn_core::select_join::{self, SelectInnerJoinQuery};
//! use twoknn_geometry::Point;
//! use twoknn_index::GridIndex;
//!
//! let mechanics = GridIndex::build(
//!     vec![Point::new(1, 1.0, 1.0), Point::new(2, 4.0, 2.0)], 4).unwrap();
//! let hotels = GridIndex::build(
//!     vec![Point::new(1, 2.0, 1.0), Point::new(2, 5.0, 2.0), Point::new(3, 9.0, 9.0)], 4).unwrap();
//! let query = SelectInnerJoinQuery {
//!     k_join: 2,
//!     k_select: 2,
//!     focal: Point::anonymous(3.0, 1.0), // the shopping center
//! };
//! let result = select_join::block_marking(&mechanics, &hotels, &query);
//! assert!(!result.rows.is_empty());
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the crate is unsafe-free except for one
// audited lifetime-erasure in `exec::pool` (the scoped worker-pool pattern —
// the same obligation rayon/crossbeam discharge), which opts in locally with
// `#[allow(unsafe_code)]` next to its safety proof.
#![deny(unsafe_code)]

pub mod cq;
pub mod error;
pub mod exec;
pub mod join;
pub mod joins2;
pub mod obs;
pub mod output;
pub mod plan;
pub mod select;
pub mod select_join;
pub mod selects2;
pub mod store;

pub use cq::{MaintenancePolicy, ResultDelta, SubscriptionId};
pub use error::QueryError;
pub use exec::{ExecutionMode, WorkerPool};
pub use obs::{
    AnalyzedQuery, Event, EventKind, HistogramKind, MetricsReport, Observability, OpTrace,
    PlanExplain, QueryTrace, TraceConfig,
};
pub use output::{Pair, QueryOutput, Triplet};
pub use store::{
    DbSnapshot, DurabilityConfig, IndexConfig, OverlayConfig, RecoveryError, RelationStore,
    ShardConfig, StoreConfig, SyncPolicy, WriteOp,
};
