//! Execution modes and the multi-core work-partitioning substrate.
//!
//! Every hot-path algorithm in this crate is written as a loop over
//! independent work items (outer blocks, contributing blocks, query specs).
//! [`run_partitioned`] abstracts that loop: in [`ExecutionMode::Serial`] it
//! is a plain iteration; in [`ExecutionMode::Parallel`] the items are
//! distributed dynamically over scoped worker threads, each accumulating into
//! its own [`Metrics`], and the per-item outputs are re-assembled in item
//! order so that **parallel execution produces byte-for-byte the same rows in
//! the same order as serial execution**, with merged work counters.
//!
//! Real threading is compiled in only with the `parallel` cargo feature; the
//! APIs are identical without it (everything degrades to serial), so callers
//! never need `cfg` gates.

use twoknn_index::Metrics;

/// How an operator should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Single-threaded execution.
    Serial,
    /// Multi-core execution over `threads` worker threads (clamped to at
    /// least 1). Falls back to serial when the `parallel` feature is off.
    Parallel {
        /// Number of worker threads to use.
        threads: usize,
    },
}

impl ExecutionMode {
    /// Parallel execution over all available cores.
    pub fn parallel() -> Self {
        ExecutionMode::Parallel {
            threads: available_threads(),
        }
    }

    /// The mode the [`crate::plan::Database`] driver uses when none is given:
    /// parallel over all cores when the `parallel` feature is enabled, serial
    /// otherwise.
    pub fn default_mode() -> Self {
        if cfg!(feature = "parallel") {
            ExecutionMode::parallel()
        } else {
            ExecutionMode::Serial
        }
    }

    /// The number of worker threads this mode will actually use.
    ///
    /// Always 1 for [`ExecutionMode::Serial`], and 1 for any mode when the
    /// `parallel` feature is disabled.
    pub fn effective_threads(&self) -> usize {
        match self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Parallel { threads } => {
                if cfg!(feature = "parallel") {
                    (*threads).max(1)
                } else {
                    1
                }
            }
        }
    }
}

impl Default for ExecutionMode {
    fn default() -> Self {
        ExecutionMode::default_mode()
    }
}

/// Number of hardware threads available to the process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `work` once per item, serially or across threads per `mode`.
///
/// `work` receives the item, an output vector to push result rows into, and a
/// metrics accumulator. Outputs are concatenated **in item order** regardless
/// of the schedule, and every worker's metrics are merged into `metrics`, so
/// serial and parallel runs report identical rows and identical work
/// counters (for algorithms whose per-item work is schedule-independent).
pub fn run_partitioned<T, R, F>(
    items: &[T],
    mode: ExecutionMode,
    metrics: &mut Metrics,
    work: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    let threads = mode.effective_threads().min(items.len().max(1));
    if threads <= 1 {
        let mut out = Vec::new();
        for item in items {
            work(item, &mut out, metrics);
        }
        return out;
    }
    run_threaded(items, threads, metrics, &work)
}

/// Runs `work` once per *block*, pushing result rows. Thin alias over
/// [`run_partitioned`] for the common block-partitioned algorithms.
pub fn run_over_blocks<R, F>(
    blocks: &[twoknn_index::BlockMeta],
    mode: ExecutionMode,
    metrics: &mut Metrics,
    work: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(twoknn_index::BlockMeta, &mut Vec<R>, &mut Metrics) + Sync,
{
    run_partitioned(blocks, mode, metrics, |block, out, metrics| {
        work(*block, out, metrics)
    })
}

#[cfg(feature = "parallel")]
fn run_threaded<T, R, F>(items: &[T], threads: usize, metrics: &mut Metrics, work: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Dynamic scheduling: workers pull the next item index from a shared
    // counter, so a single expensive item (e.g. one dense block) cannot
    // serialize the run the way fixed chunking would.
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Vec<R>)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut local_metrics = Metrics::default();
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let mut out = Vec::new();
                    work(&items[i], &mut out, &mut local_metrics);
                    local.push((i, out));
                }
                (local, local_metrics)
            }));
        }
        for handle in handles {
            let (local, local_metrics) = handle.join().expect("worker thread panicked");
            metrics.merge(&local_metrics);
            tagged.extend(local);
        }
    });
    // Restore item order for deterministic output.
    tagged.sort_unstable_by_key(|(i, _)| *i);
    let mut out = Vec::with_capacity(tagged.iter().map(|(_, v)| v.len()).sum());
    for (_, mut v) in tagged {
        out.append(&mut v);
    }
    out
}

#[cfg(not(feature = "parallel"))]
fn run_threaded<T, R, F>(items: &[T], _threads: usize, metrics: &mut Metrics, work: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    let mut out = Vec::new();
    for item in items {
        work(item, &mut out, metrics);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_produce_identical_ordered_output() {
        let items: Vec<u64> = (0..1_000).collect();
        let work = |item: &u64, out: &mut Vec<u64>, metrics: &mut Metrics| {
            metrics.points_scanned += 1;
            out.push(item * 2);
            if item % 3 == 0 {
                out.push(item * 2 + 1);
            }
        };
        let mut m_serial = Metrics::default();
        let serial = run_partitioned(&items, ExecutionMode::Serial, &mut m_serial, work);
        let mut m_par = Metrics::default();
        let parallel = run_partitioned(
            &items,
            ExecutionMode::Parallel { threads: 7 },
            &mut m_par,
            work,
        );
        assert_eq!(serial, parallel);
        assert_eq!(m_serial, m_par);
        assert_eq!(m_serial.points_scanned, 1_000);
    }

    #[test]
    fn empty_input_is_fine_in_both_modes() {
        let items: Vec<u64> = Vec::new();
        let mut m = Metrics::default();
        let out = run_partitioned(
            &items,
            ExecutionMode::parallel(),
            &mut m,
            |_, _out: &mut Vec<u64>, _| {},
        );
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_is_at_least_one() {
        assert_eq!(ExecutionMode::Serial.effective_threads(), 1);
        let p = ExecutionMode::Parallel { threads: 0 };
        assert!(p.effective_threads() >= 1);
        assert!(available_threads() >= 1);
    }
}
