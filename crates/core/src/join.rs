//! The kNN-join operator `E1 ⋈_kNN E2`.
//!
//! "E1 ⋈kNN E2 returns all the pairs of the form (e1, e2), where e1 ∈ E1 and
//! e2 ∈ E2, and e2 is among the k-closest points to e1." (Section 1.)
//!
//! The kNN-join is evaluated by computing, for every point of the outer
//! relation, its neighborhood in the inner relation via the locality-based
//! `getkNN` — exactly the strategy the paper assumes for its conceptually
//! correct QEPs. A thread-parallel variant is provided for large outer
//! relations; it partitions the outer relation's blocks across threads and
//! merges per-thread metrics, producing the same result set as the
//! sequential operator.

use twoknn_geometry::Point;
use twoknn_index::{get_knn, Metrics, SpatialIndex};

use crate::exec::ExecutionMode;
use crate::output::{Pair, QueryOutput};

/// Evaluates `outer ⋈_kNN inner` with the given `k`.
pub fn knn_join<O, I>(outer: &O, inner: &I, k: usize) -> QueryOutput<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let rows = knn_join_with_metrics(outer, inner, k, &mut metrics);
    QueryOutput::new(rows, metrics)
}

/// Evaluates the kNN-join under an explicit [`ExecutionMode`], accumulating
/// work into `metrics`. In parallel mode the outer relation's blocks are
/// partitioned across worker threads; rows come back in the same order as
/// the serial evaluation and metrics are the merged per-worker counters.
pub fn knn_join_rows_with_mode<O, I>(
    outer: &O,
    inner: &I,
    k: usize,
    mode: ExecutionMode,
    metrics: &mut Metrics,
) -> Vec<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let rows =
        crate::exec::run_over_blocks(outer.blocks(), mode, metrics, |block, pairs, metrics| {
            for e1 in outer.block_points(block.id) {
                let nbr = get_knn(inner, &e1, k, metrics);
                for n in nbr.members() {
                    pairs.push(Pair::new(e1, n.point));
                }
            }
        });
    metrics.tuples_emitted += rows.len() as u64;
    rows
}

/// Evaluates the kNN-join, accumulating work into `metrics`.
pub fn knn_join_with_metrics<O, I>(
    outer: &O,
    inner: &I,
    k: usize,
    metrics: &mut Metrics,
) -> Vec<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut pairs = Vec::new();
    for block in outer.blocks() {
        for e1 in outer.block_points(block.id) {
            let nbr = get_knn(inner, &e1, k, metrics);
            for n in nbr.members() {
                pairs.push(Pair::new(e1, n.point));
            }
        }
    }
    metrics.tuples_emitted += pairs.len() as u64;
    pairs
}

/// Evaluates the kNN-join for a specific subset of outer points (used by the
/// two-predicate algorithms once pruning has decided which outer points can
/// contribute).
pub fn knn_join_points<I>(
    outer_points: &[Point],
    inner: &I,
    k: usize,
    metrics: &mut Metrics,
) -> Vec<Pair>
where
    I: SpatialIndex + ?Sized,
{
    let mut pairs = Vec::new();
    for e1 in outer_points {
        let nbr = get_knn(inner, e1, k, metrics);
        for n in nbr.members() {
            pairs.push(Pair::new(*e1, n.point));
        }
    }
    metrics.tuples_emitted += pairs.len() as u64;
    pairs
}

/// Multi-core kNN-join on the shared persistent worker pool: outer blocks
/// are distributed over the pool's workers with dynamic scheduling (each
/// team member pulls the next block), and the rows are reassembled in block
/// order. The result set is identical to [`knn_join`] (including row
/// order); metrics are the merged per-worker work.
///
/// Real threading requires the `parallel` cargo feature; without it this
/// runs serially (same results, one thread) — see
/// [`crate::exec::ExecutionMode`].
pub fn knn_join_pooled<O, I>(outer: &O, inner: &I, k: usize) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let rows = knn_join_rows_with_mode(outer, inner, k, ExecutionMode::Pooled, &mut metrics);
    QueryOutput::new(rows, metrics)
}

/// Thread-parallel kNN-join over a **freshly spawned** scoped team of
/// `num_threads` workers (the spawn-per-phase baseline; prefer
/// [`knn_join_pooled`], which amortizes thread creation across queries).
/// Scheduling, row order and metrics semantics match [`knn_join_pooled`].
///
/// Real threading requires the `parallel` cargo feature; without it this
/// runs serially (same results, one thread) — see
/// [`crate::exec::ExecutionMode`].
pub fn knn_join_parallel<O, I>(
    outer: &O,
    inner: &I,
    k: usize,
    num_threads: usize,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let rows = knn_join_rows_with_mode(
        outer,
        inner,
        k,
        ExecutionMode::Parallel {
            threads: num_threads,
        },
        &mut metrics,
    );
    QueryOutput::new(rows, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::pair_id_set;
    use twoknn_index::{brute_force_knn, GridIndex};

    fn relation(n: usize, stride: f64, offset: f64) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    offset + ((i * 13) % 50) as f64 * stride,
                    offset + ((i * 29) % 50) as f64 * stride,
                )
            })
            .collect();
        GridIndex::build(pts, 8).unwrap()
    }

    #[test]
    fn join_emits_k_pairs_per_outer_point() {
        let outer = relation(40, 1.0, 0.0);
        let inner = relation(100, 0.7, 2.0);
        let k = 3;
        let out = knn_join(&outer, &inner, k);
        assert_eq!(out.len(), 40 * k);
        assert_eq!(out.metrics.neighborhoods_computed, 40);
    }

    #[test]
    fn join_matches_brute_force_neighborhoods() {
        let outer = relation(25, 1.3, 0.0);
        let inner = relation(60, 0.9, 1.0);
        let k = 4;
        let got = pair_id_set(&knn_join(&outer, &inner, k).rows);
        let mut want = std::collections::BTreeSet::new();
        for e1 in outer.all_points() {
            for id in brute_force_knn(&inner, &e1, k).ids() {
                want.insert((e1.id, id));
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn join_is_not_symmetric() {
        let outer = relation(30, 1.0, 0.0);
        let inner = relation(30, 1.0, 10.0);
        let ab = pair_id_set(&knn_join(&outer, &inner, 2).rows);
        let ba: std::collections::BTreeSet<(u64, u64)> = knn_join(&inner, &outer, 2)
            .rows
            .iter()
            .map(|p| (p.right.id, p.left.id))
            .collect();
        // The same id pairs rarely coincide; assert the operator at least
        // produced different pair sets for this asymmetric layout.
        assert_ne!(ab, ba);
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let outer = relation(80, 1.1, 0.0);
        let inner = relation(120, 0.8, 0.5);
        let seq = knn_join(&outer, &inner, 5);
        let par = knn_join_parallel(&outer, &inner, 5, 4);
        assert_eq!(pair_id_set(&seq.rows), pair_id_set(&par.rows));
        assert_eq!(
            seq.metrics.neighborhoods_computed,
            par.metrics.neighborhoods_computed
        );
    }

    #[test]
    fn pooled_join_matches_sequential_exactly() {
        let outer = relation(80, 1.1, 0.0);
        let inner = relation(120, 0.8, 0.5);
        let seq = knn_join(&outer, &inner, 5);
        let pooled = knn_join_pooled(&outer, &inner, 5);
        // Not just the same set: the same rows in the same order, with the
        // same merged work counters.
        assert_eq!(seq.rows, pooled.rows);
        assert_eq!(seq.metrics, pooled.metrics);
    }

    #[test]
    fn join_points_subset_matches_full_join_restriction() {
        let outer = relation(50, 1.0, 0.0);
        let inner = relation(70, 1.0, 0.0);
        let mut m = Metrics::default();
        let subset: Vec<Point> = outer.all_points().into_iter().take(10).collect();
        let partial = knn_join_points(&subset, &inner, 3, &mut m);
        let full = knn_join(&outer, &inner, 3);
        let subset_ids: std::collections::BTreeSet<u64> = subset.iter().map(|p| p.id).collect();
        let expected: std::collections::BTreeSet<_> = full
            .rows
            .iter()
            .filter(|p| subset_ids.contains(&p.left.id))
            .map(Pair::ids)
            .collect();
        assert_eq!(pair_id_set(&partial), expected);
    }

    #[test]
    fn empty_inner_relation_produces_no_pairs() {
        let outer = relation(10, 1.0, 0.0);
        let inner =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        assert!(knn_join(&outer, &inner, 3).is_empty());
    }
}
