//! Conceptually correct and deliberately wrong plans for two kNN-selects.

use twoknn_geometry::Point;
use twoknn_index::{Metrics, Neighborhood, SpatialIndex};

use crate::exec::{run_partitioned, ExecutionMode};
use crate::output::QueryOutput;
use crate::select::knn_select_neighborhood;

use super::TwoSelectsQuery;

/// The correct QEP of Figure 16: evaluate `σ_{k1,f1}(E)` and `σ_{k2,f2}(E)`
/// independently over the full relation and intersect the two results.
pub fn two_selects_conceptual<I>(relation: &I, query: &TwoSelectsQuery) -> QueryOutput<Point>
where
    I: SpatialIndex + Sync + ?Sized,
{
    two_selects_conceptual_with_mode(relation, query, ExecutionMode::Serial)
}

/// The conceptual QEP under an explicit [`ExecutionMode`]: the two selects
/// are independent by construction, so they are the two work items of a
/// partitioned run — in a parallel mode each select evaluates on its own
/// worker (e.g. one pool task each) before the intersection. Rows and merged
/// work counters are identical to the serial run.
pub fn two_selects_conceptual_with_mode<I>(
    relation: &I,
    query: &TwoSelectsQuery,
    mode: ExecutionMode,
) -> QueryOutput<Point>
where
    I: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let predicates = [(query.k1, query.f1), (query.k2, query.f2)];
    let mut neighborhoods = run_partitioned(
        &predicates,
        mode,
        &mut metrics,
        |(k, focal), out, metrics| {
            out.push(knn_select_neighborhood(relation, focal, *k, metrics));
        },
    );
    let nbr2 = neighborhoods.pop().expect("two predicates evaluated");
    let nbr1 = neighborhoods.pop().expect("two predicates evaluated");
    intersect_output(&nbr1, &nbr2, metrics)
}

/// The **wrong** sequential plan of Figures 14 / 15: evaluate one select and
/// feed only its `k` survivors to the other. Included to demonstrate the
/// non-equivalence in tests and examples; never use it to answer the query.
///
/// When `f1_first` is true the `(k1, f1)` predicate runs first (Figure 14
/// flavor), otherwise the `(k2, f2)` predicate runs first (Figure 15 flavor).
pub fn two_selects_wrong_sequential<I>(
    relation: &I,
    query: &TwoSelectsQuery,
    f1_first: bool,
) -> QueryOutput<Point>
where
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let (first_k, first_f, second_k, second_f) = if f1_first {
        (query.k1, query.f1, query.k2, query.f2)
    } else {
        (query.k2, query.f2, query.k1, query.f1)
    };
    let first = knn_select_neighborhood(relation, &first_f, first_k, &mut metrics);

    // Second select evaluated only over the survivors of the first.
    let survivors: Vec<Point> = first.points().copied().collect();
    let mut ranked: Vec<(f64, Point)> = survivors
        .iter()
        .map(|p| {
            metrics.distance_computations += 1;
            (second_f.distance(p), *p)
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite distances")
            .then(a.1.id.cmp(&b.1.id))
    });
    let rows: Vec<Point> = ranked.into_iter().take(second_k).map(|(_, p)| p).collect();
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// Helper shared with the 2-kNN-select algorithm: intersects two
/// neighborhoods and wraps the outcome into a [`QueryOutput`].
pub(crate) fn intersect_output(
    nbr1: &Neighborhood,
    nbr2: &Neighborhood,
    mut metrics: Metrics,
) -> QueryOutput<Point> {
    let rows = nbr1.intersect(nbr2);
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::point_id_set;
    use twoknn_index::GridIndex;

    fn houses() -> GridIndex {
        // A line of houses between two focal points plus scattered ones.
        let mut pts = Vec::new();
        for i in 0..30u64 {
            pts.push(Point::new(i, i as f64, 0.0));
        }
        for i in 30..60u64 {
            pts.push(Point::new(i, (i % 10) as f64 * 3.0, 5.0 + (i % 7) as f64));
        }
        GridIndex::build(pts, 6).unwrap()
    }

    #[test]
    fn sequential_evaluation_differs_from_conceptual() {
        let e = houses();
        // Work at the left end, school at the right end.
        let q = TwoSelectsQuery::new(
            5,
            Point::anonymous(0.0, 0.0),
            5,
            Point::anonymous(29.0, 0.0),
        );
        let correct = point_id_set(&two_selects_conceptual(&e, &q).rows);
        let wrong_a = point_id_set(&two_selects_wrong_sequential(&e, &q, true).rows);
        let wrong_b = point_id_set(&two_selects_wrong_sequential(&e, &q, false).rows);
        // With the focal points far apart and k small, the true intersection
        // is empty but each sequential plan still reports k houses.
        assert!(correct.is_empty());
        assert_eq!(wrong_a.len(), 5);
        assert_eq!(wrong_b.len(), 5);
        assert_ne!(correct, wrong_a);
        assert_ne!(wrong_a, wrong_b);
    }

    #[test]
    fn conceptual_intersection_is_symmetric_in_the_predicates() {
        let e = houses();
        let q = TwoSelectsQuery::new(
            8,
            Point::anonymous(10.0, 1.0),
            12,
            Point::anonymous(14.0, 2.0),
        );
        let swapped = TwoSelectsQuery::new(
            12,
            Point::anonymous(14.0, 2.0),
            8,
            Point::anonymous(10.0, 1.0),
        );
        assert_eq!(
            point_id_set(&two_selects_conceptual(&e, &q).rows),
            point_id_set(&two_selects_conceptual(&e, &swapped).rows)
        );
    }

    #[test]
    fn overlapping_predicates_return_the_overlap() {
        let e = houses();
        let q = TwoSelectsQuery::new(
            4,
            Point::anonymous(5.0, 0.0),
            20,
            Point::anonymous(6.0, 0.0),
        );
        let out = two_selects_conceptual(&e, &q);
        // Every member of the smaller-k neighborhood near (5,0) is also among
        // the 20 nearest of (6,0), so the intersection equals the k1 set.
        assert_eq!(out.len(), 4);
    }
}
