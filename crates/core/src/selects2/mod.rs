//! Queries with two kNN-select predicates (Section 5 of the paper).
//!
//! Example (Section 5.1): select the houses that are among the five closest
//! to the workplace **and** among the five closest to the school. Evaluating
//! the two selects one after the other is wrong — whichever runs second only
//! sees the `k` points that survived the first (Figures 14 and 15). The
//! correct conceptual QEP evaluates both selects independently against the
//! full relation and intersects their results (Figure 16).
//!
//! The efficient **2-kNN-select** algorithm (Procedure 5) exploits the fact
//! that the final result is a subset of the smaller-`k` predicate's
//! neighborhood: after computing that neighborhood, the locality of the
//! larger-`k` predicate only needs to cover it, so its locality is bounded by
//! a search threshold instead of growing with `k`.

mod conceptual;
mod two_knn_select;

pub(crate) use conceptual::intersect_output;
pub use conceptual::{
    two_selects_conceptual, two_selects_conceptual_with_mode, two_selects_wrong_sequential,
};
pub use two_knn_select::two_knn_select;

use twoknn_geometry::Point;

/// Parameters of a query with two kNN-select predicates over one relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSelectsQuery {
    /// `k1`: the k of the first predicate.
    pub k1: usize,
    /// `f1`: the focal point of the first predicate (e.g. the workplace).
    pub f1: Point,
    /// `k2`: the k of the second predicate.
    pub k2: usize,
    /// `f2`: the focal point of the second predicate (e.g. the school).
    pub f2: Point,
}

impl TwoSelectsQuery {
    /// Creates a query description.
    pub fn new(k1: usize, f1: Point, k2: usize, f2: Point) -> Self {
        Self { k1, f1, k2, f2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_holds_parameters() {
        let q = TwoSelectsQuery::new(
            5,
            Point::anonymous(0.0, 0.0),
            100,
            Point::anonymous(1.0, 1.0),
        );
        assert_eq!(q.k1, 5);
        assert_eq!(q.k2, 100);
    }
}
