//! The **2-kNN-select** algorithm (Procedure 5, Section 5.2).
//!
//! When the two predicates have very different `k` values, the conceptual QEP
//! wastes most of its time building the locality of the larger-`k` predicate:
//! with `k2 ≫ k1` that locality covers almost the whole space. Because the
//! final result can only contain members of the smaller-`k` neighborhood, the
//! larger predicate's locality can be truncated: after computing `nbr1`, the
//! *search threshold* is the distance from `f2` to the farthest member of
//! `nbr1`, and a block enters `f2`'s locality only if its MINDIST from `f2`
//! is within that threshold.

use twoknn_geometry::Point;
use twoknn_index::{get_knn_bounded, Metrics, SpatialIndex};

use crate::output::QueryOutput;
use crate::select::knn_select_neighborhood;

use super::conceptual::intersect_output;
use super::TwoSelectsQuery;

/// Evaluates a query with two kNN-select predicates using the 2-kNN-select
/// algorithm (Procedure 5).
///
/// The predicate with the smaller `k` is evaluated first (lines 1–5 swap the
/// predicates if needed); the other predicate's locality is then bounded by
/// the search threshold derived from the first neighborhood.
pub fn two_knn_select<I>(relation: &I, query: &TwoSelectsQuery) -> QueryOutput<Point>
where
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();

    // Lines 1–4: make (k1, f1) the smaller-k predicate.
    let (k1, f1, k2, f2) = if query.k1 > query.k2 {
        (query.k2, query.f2, query.k1, query.f1)
    } else {
        (query.k1, query.f1, query.k2, query.f2)
    };

    // Line 5: the smaller-k neighborhood.
    let nbr1 = knn_select_neighborhood(relation, &f1, k1, &mut metrics);
    if nbr1.is_empty() {
        return QueryOutput::new(Vec::new(), metrics);
    }

    // Line 6: search threshold = distance from f2 to the farthest member of
    // nbr1 (so that the bounded locality of f2 is guaranteed to cover nbr1).
    let search_threshold = nbr1.farthest_distance_from(&f2).expect("nbr1 is non-empty");
    metrics.distance_computations += nbr1.len() as u64;

    // Lines 7–32: bounded locality of f2 and its neighborhood.
    let nbr2 = get_knn_bounded(relation, &f2, k2, search_threshold, &mut metrics);

    // Line 33: intersect.
    intersect_output(&nbr1, &nbr2, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::point_id_set;
    use crate::selects2::two_selects_conceptual;
    use twoknn_index::GridIndex;

    fn relation(n: usize, seed: u64) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0xFF51AFD7ED558CCD) ^ seed.wrapping_mul(31);
                Point::new(
                    i as u64,
                    (h % 1013) as f64 * 0.1,
                    ((h / 1013) % 1013) as f64 * 0.1,
                )
            })
            .collect();
        GridIndex::build(pts, 16).unwrap()
    }

    #[test]
    fn matches_conceptual_for_equal_and_unequal_k() {
        let e = relation(2000, 1);
        let f1 = Point::anonymous(30.0, 40.0);
        let f2 = Point::anonymous(60.0, 55.0);
        for (k1, k2) in [(5, 5), (10, 10), (5, 50), (10, 320), (64, 8)] {
            let q = TwoSelectsQuery::new(k1, f1, k2, f2);
            let fast = two_knn_select(&e, &q);
            let slow = two_selects_conceptual(&e, &q);
            assert_eq!(
                point_id_set(&fast.rows),
                point_id_set(&slow.rows),
                "k1={k1} k2={k2}"
            );
        }
    }

    #[test]
    fn result_is_subset_of_smaller_k_neighborhood() {
        let e = relation(1500, 2);
        let q = TwoSelectsQuery::new(
            8,
            Point::anonymous(10.0, 10.0),
            200,
            Point::anonymous(90.0, 15.0),
        );
        let out = two_knn_select(&e, &q);
        assert!(out.len() <= 8);
    }

    #[test]
    fn scans_fewer_blocks_than_conceptual_for_large_k2() {
        // The two focal points are close together (the paper's house-hunting
        // scenario: work and school in the same part of town) while k2 is
        // large, so the bounded locality of f2 covers a small disk around the
        // focal pair instead of a third of the city.
        let e = relation(4000, 3);
        let q = TwoSelectsQuery::new(
            10,
            Point::anonymous(30.0, 30.0),
            1280,
            Point::anonymous(40.0, 35.0),
        );
        let fast = two_knn_select(&e, &q);
        let slow = two_selects_conceptual(&e, &q);
        assert_eq!(point_id_set(&fast.rows), point_id_set(&slow.rows));
        assert!(
            fast.metrics.points_scanned < slow.metrics.points_scanned,
            "2-kNN-select {} vs conceptual {} points scanned",
            fast.metrics.points_scanned,
            slow.metrics.points_scanned
        );
    }

    #[test]
    fn swapped_k_values_are_handled() {
        // k1 > k2 triggers the swap at the top of Procedure 5.
        let e = relation(1000, 4);
        let q = TwoSelectsQuery::new(
            500,
            Point::anonymous(50.0, 50.0),
            5,
            Point::anonymous(52.0, 48.0),
        );
        let fast = two_knn_select(&e, &q);
        let slow = two_selects_conceptual(&e, &q);
        assert_eq!(point_id_set(&fast.rows), point_id_set(&slow.rows));
    }

    #[test]
    fn empty_relation_returns_empty() {
        let empty =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        let q = TwoSelectsQuery::new(3, Point::anonymous(0.0, 0.0), 5, Point::anonymous(1.0, 1.0));
        assert!(two_knn_select(&empty, &q).is_empty());
    }
}
