//! A small, deterministic pseudo-random number generator.
//!
//! The workspace builds without external dependencies, so instead of the
//! `rand` crate the generators use this xoshiro256++ implementation (Blackman
//! & Vigna), seeded through SplitMix64 exactly as the reference code
//! recommends. The API mirrors the subset of `rand::rngs::StdRng` the
//! generators need (`seed_from_u64`, `gen_range`, `gen_bool`), so the
//! call sites read the same as the idiomatic `rand` code they replace.
//!
//! Determinism is part of the public contract: for a given seed the sequence
//! is stable across platforms and releases, because benchmark workloads and
//! test fixtures are derived from it.

/// A deterministic xoshiro256++ generator with a `StdRng`-like API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 state expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from a range. Supports `a..b` and `a..=b` over `f64`
    /// and `a..b` over `usize`, matching the call sites in this crate.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

/// A range that [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty inclusive f64 range");
        // Stretch the [0, 1) sample by one ulp so values at the top of the
        // unit interval round up to (and are clamped at) `hi`, making the
        // inclusive endpoint actually reachable.
        (lo + rng.next_f64() * (1.0 + f64::EPSILON) * (hi - lo)).clamp(lo, hi)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        debug_assert!(self.start < self.end, "empty usize range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias of
        // naive `% span` would be fine for workload generation, but this is
        // just as cheap and exactly uniform for spans far below 2^64.
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        self.start + hi as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let w = rng.gen_range(-5.0..=5.0);
            assert!((-5.0..=5.0).contains(&w));
        }
    }

    #[test]
    fn usize_samples_cover_the_range_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} too skewed");
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn degenerate_inclusive_range_returns_endpoint() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(2.5..=2.5), 2.5);
    }
}
