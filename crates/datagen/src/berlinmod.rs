//! A BerlinMOD-like synthetic moving-object snapshot generator.
//!
//! The paper's evaluation uses snapshots of the BerlinMOD benchmark: about
//! two thousand cars reporting their movement over Berlin for 28 days, with
//! the time dimension removed ("to deal with snapshots of points"). The
//! benchmark data itself is not available offline, so this module simulates
//! the same *kind* of data:
//!
//! * a city extent with a synthetic street network (a Manhattan-style grid of
//!   arterial streets with small jitter, denser towards the city center),
//! * a fleet of vehicles, each assigned a *home* and a *work* node biased
//!   towards the center (population density),
//! * vehicle positions sampled along rectilinear home↔work routes, plus a
//!   fraction of "parked" positions exactly at home/work.
//!
//! The resulting point set is strongly non-uniform: most index blocks are
//! nearly empty while blocks on arterials and near the center hold thousands
//! of points — the property that drives the pruning behaviour of the paper's
//! algorithms. The substitution is documented in `DESIGN.md`.

use twoknn_geometry::{Point, Rect};

use crate::rng::StdRng;

/// Configuration of the synthetic BerlinMOD-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerlinModConfig {
    /// Number of snapshot points to generate.
    pub num_points: usize,
    /// Number of vehicles in the fleet (BerlinMOD scale factor 1.0 ≈ 2,000).
    pub num_vehicles: usize,
    /// Spacing between arterial streets, in the same unit as the extent.
    pub street_spacing: f64,
    /// Standard deviation of the jitter of positions around street lines.
    pub street_jitter: f64,
    /// Fraction of points that are parked exactly at home/work locations.
    pub parked_fraction: f64,
    /// City extent.
    pub extent: Rect,
    /// RNG seed.
    pub seed: u64,
}

impl BerlinModConfig {
    /// A configuration comparable to BerlinMOD scale factor 1.0 with the
    /// requested number of snapshot points.
    pub fn with_points(num_points: usize, seed: u64) -> Self {
        Self {
            num_points,
            num_vehicles: 2_000,
            street_spacing: 2_500.0,
            street_jitter: 60.0,
            parked_fraction: 0.25,
            extent: crate::default_extent(),
            seed,
        }
    }
}

/// Generates a snapshot point set per `config`. See the module docs.
pub fn berlinmod(config: &BerlinModConfig) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let extent = config.extent;
    let center = extent.center();
    // Scale of the central-density bias: positions are pulled towards the
    // center with a Gaussian whose std-dev is a quarter of the extent.
    let sigma = extent.width().min(extent.height()) / 4.0;

    // Sample a node: a street intersection near a center-biased location.
    let sample_node = |rng: &mut StdRng| -> (f64, f64) {
        let gx: f64 = center.x + sigma * sample_standard_normal(rng);
        let gy: f64 = center.y + sigma * sample_standard_normal(rng);
        let snap = |v: f64, lo: f64, hi: f64| {
            let v = v.clamp(lo, hi);
            let k = ((v - lo) / config.street_spacing).round();
            (lo + k * config.street_spacing).clamp(lo, hi)
        };
        (
            snap(gx, extent.min_x, extent.max_x),
            snap(gy, extent.min_y, extent.max_y),
        )
    };

    // Fleet of vehicles with home and work nodes.
    let fleet: Vec<((f64, f64), (f64, f64))> = (0..config.num_vehicles.max(1))
        .map(|_| (sample_node(&mut rng), sample_node(&mut rng)))
        .collect();

    let mut points = Vec::with_capacity(config.num_points);
    for id in 0..config.num_points {
        let (home, work) = fleet[rng.gen_range(0..fleet.len())];
        let (x, y) = if rng.gen_bool(config.parked_fraction.clamp(0.0, 1.0)) {
            // Parked at home or work.
            if rng.gen_bool(0.5) {
                home
            } else {
                work
            }
        } else {
            // En route on the rectilinear (L-shaped) path home -> work.
            // First travel along x on the home street, then along y on the
            // work street (or the other way round, picked at random).
            let t: f64 = rng.gen_range(0.0..1.0);
            let x_first = rng.gen_bool(0.5);
            let leg_x = (work.0 - home.0).abs();
            let leg_y = (work.1 - home.1).abs();
            let total = (leg_x + leg_y).max(1e-9);
            let travelled = t * total;
            if x_first {
                if travelled <= leg_x {
                    (home.0 + (work.0 - home.0).signum() * travelled, home.1)
                } else {
                    (
                        work.0,
                        home.1 + (work.1 - home.1).signum() * (travelled - leg_x),
                    )
                }
            } else if travelled <= leg_y {
                (home.0, home.1 + (work.1 - home.1).signum() * travelled)
            } else {
                (
                    home.0 + (work.0 - home.0).signum() * (travelled - leg_y),
                    work.1,
                )
            }
        };
        // GPS-like jitter around the street.
        let jx = config.street_jitter * sample_standard_normal(&mut rng);
        let jy = config.street_jitter * sample_standard_normal(&mut rng);
        points.push(Point::new(
            id as u64,
            (x + jx).clamp(extent.min_x, extent.max_x),
            (y + jy).clamp(extent.min_y, extent.max_y),
        ));
    }
    points
}

/// Standard normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`, which is not in the allowed crate list).
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_inside_extent() {
        let cfg = BerlinModConfig::with_points(5_000, 17);
        let pts = berlinmod(&cfg);
        assert_eq!(pts.len(), 5_000);
        for p in &pts {
            assert!(cfg.extent.contains(p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BerlinModConfig::with_points(1_000, 3);
        assert_eq!(berlinmod(&cfg), berlinmod(&cfg));
        let other = BerlinModConfig::with_points(1_000, 4);
        assert_ne!(berlinmod(&cfg), berlinmod(&other));
    }

    #[test]
    fn density_is_skewed_compared_to_uniform() {
        // Partition the extent into a 10x10 grid and compare the max cell
        // count to the mean: the BerlinMOD-like data must be far more skewed
        // than a uniform sample of the same size.
        let cfg = BerlinModConfig::with_points(20_000, 23);
        let pts = berlinmod(&cfg);
        let skew = |pts: &[Point]| {
            let mut counts = vec![0usize; 100];
            for p in pts {
                let ix = ((p.x - cfg.extent.min_x) / cfg.extent.width() * 10.0)
                    .min(9.0)
                    .floor() as usize;
                let iy = ((p.y - cfg.extent.min_y) / cfg.extent.height() * 10.0)
                    .min(9.0)
                    .floor() as usize;
                counts[iy * 10 + ix] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            max / (pts.len() as f64 / 100.0)
        };
        let uniform_pts = crate::uniform(20_000, cfg.extent, 23);
        assert!(skew(&pts) > 2.0 * skew(&uniform_pts));
    }

    #[test]
    fn points_concentrate_towards_the_center() {
        let cfg = BerlinModConfig::with_points(10_000, 29);
        let pts = berlinmod(&cfg);
        let c = cfg.extent.center();
        let half = cfg.extent.width() / 4.0;
        let central = pts
            .iter()
            .filter(|p| (p.x - c.x).abs() <= half && (p.y - c.y).abs() <= half)
            .count();
        // The central quarter of the area should hold well over a quarter of
        // the points.
        assert!(central as f64 > 0.4 * pts.len() as f64);
    }

    #[test]
    fn ids_are_sequential() {
        let cfg = BerlinModConfig::with_points(100, 5);
        for (i, p) in berlinmod(&cfg).iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }
}
