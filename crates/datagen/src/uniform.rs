//! Uniformly distributed point sets.

use twoknn_geometry::{Point, Rect};

use crate::rng::StdRng;

/// Generates `n` points uniformly distributed over `extent`.
///
/// Ids are assigned sequentially from 0, unique within the generated
/// relation. The generator is deterministic for a given `(n, extent, seed)`.
pub fn uniform(n: usize, extent: Rect, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Point::new(
                i as u64,
                rng.gen_range(extent.min_x..=extent.max_x),
                rng.gen_range(extent.min_y..=extent.max_y),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_extent;

    #[test]
    fn generates_requested_count_inside_extent() {
        let extent = default_extent();
        let pts = uniform(500, extent, 42);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!(extent.contains(p));
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let extent = default_extent();
        assert_eq!(uniform(100, extent, 7), uniform(100, extent, 7));
        assert_ne!(uniform(100, extent, 7), uniform(100, extent, 8));
    }

    #[test]
    fn ids_are_sequential() {
        let pts = uniform(10, default_extent(), 1);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }

    #[test]
    fn covers_the_extent_roughly_evenly() {
        let extent = default_extent();
        let pts = uniform(4000, extent, 3);
        // Split into 4 quadrants; each should hold between 15% and 35%.
        let cx = (extent.min_x + extent.max_x) / 2.0;
        let cy = (extent.min_y + extent.max_y) / 2.0;
        let mut counts = [0usize; 4];
        for p in &pts {
            let q = usize::from(p.x >= cx) + 2 * usize::from(p.y >= cy);
            counts[q] += 1;
        }
        for c in counts {
            assert!(c > 600 && c < 1400, "quadrant count {c} too skewed");
        }
    }
}
