//! # twoknn-datagen
//!
//! Workload generators for the `two-knn` benchmark harness and tests.
//!
//! The paper's evaluation (Section 6) uses two kinds of data:
//!
//! 1. Snapshots of the **BerlinMOD** benchmark (about two thousand cars
//!    reporting their movement over Berlin for 28 days, with the time
//!    dimension removed), with dataset sizes from 32,000 to 2,560,000 points.
//! 2. **Synthetic clustered data** with a configurable number of
//!    non-overlapping clusters (each cluster with the same number of points
//!    and the same area), used for the join-order and chained-join
//!    experiments.
//!
//! The BerlinMOD download is not available offline, so this crate provides a
//! *synthetic moving-object generator* ([`berlinmod`]) that reproduces the
//! properties the algorithms are sensitive to: a city-scale extent, density
//! concentrated along a street network and around a city center, and point
//! counts per index block that vary by orders of magnitude. The substitution
//! is documented in `DESIGN.md`.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod berlinmod;
mod clustered;
pub mod rng;
mod spec;
mod uniform;

pub use berlinmod::{berlinmod, BerlinModConfig};
pub use clustered::{clustered, ClusterConfig};
pub use spec::{generate, DatasetSpec};
pub use uniform::uniform;

use twoknn_geometry::Rect;

/// The default spatial extent used by all generators: a 100 km × 100 km city
/// region expressed in meters, comparable to the Berlin extent of BerlinMOD.
pub fn default_extent() -> Rect {
    Rect::new(0.0, 0.0, 100_000.0, 100_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_extent_is_square_and_positive() {
        let e = default_extent();
        assert_eq!(e.width(), e.height());
        assert!(e.area() > 0.0);
    }
}
