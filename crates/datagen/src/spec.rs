//! Declarative dataset specifications used by the benchmark harness.

use twoknn_geometry::{Point, Rect};

use crate::{berlinmod, clustered, uniform, BerlinModConfig, ClusterConfig};

/// A named description of a dataset, resolvable to a point set with
/// [`generate`].
///
/// The benchmark harness builds its workloads from these specs so that every
/// experiment documents its inputs declaratively (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// Uniformly distributed points over an extent.
    Uniform {
        /// Number of points.
        n: usize,
        /// Extent; `None` means [`crate::default_extent`].
        extent: Option<Rect>,
        /// RNG seed.
        seed: u64,
    },
    /// Equal-size, equal-area, non-overlapping clusters.
    Clustered(ClusterConfig),
    /// BerlinMOD-like synthetic moving-object snapshot.
    BerlinMod(BerlinModConfig),
}

impl DatasetSpec {
    /// Uniform dataset over the default extent.
    pub fn uniform(n: usize, seed: u64) -> Self {
        DatasetSpec::Uniform {
            n,
            extent: None,
            seed,
        }
    }

    /// BerlinMOD-like dataset with the default fleet configuration.
    pub fn berlinmod(n: usize, seed: u64) -> Self {
        DatasetSpec::BerlinMod(BerlinModConfig::with_points(n, seed))
    }

    /// Clustered dataset with the paper's Figure 23 cluster shape.
    pub fn clustered(num_clusters: usize, seed: u64) -> Self {
        DatasetSpec::Clustered(ClusterConfig::paper_default(num_clusters, seed))
    }

    /// Number of points the spec will generate.
    pub fn num_points(&self) -> usize {
        match self {
            DatasetSpec::Uniform { n, .. } => *n,
            DatasetSpec::Clustered(c) => c.total_points(),
            DatasetSpec::BerlinMod(c) => c.num_points,
        }
    }

    /// Short human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            DatasetSpec::Uniform { n, .. } => format!("uniform({n})"),
            DatasetSpec::Clustered(c) => {
                format!("clustered({}x{})", c.num_clusters, c.points_per_cluster)
            }
            DatasetSpec::BerlinMod(c) => format!("berlinmod({})", c.num_points),
        }
    }
}

/// Materializes a dataset spec into a point set.
pub fn generate(spec: &DatasetSpec) -> Vec<Point> {
    match spec {
        DatasetSpec::Uniform { n, extent, seed } => {
            uniform(*n, extent.unwrap_or_else(crate::default_extent), *seed)
        }
        DatasetSpec::Clustered(cfg) => clustered(cfg),
        DatasetSpec::BerlinMod(cfg) => berlinmod(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_spec_size() {
        for spec in [
            DatasetSpec::uniform(123, 1),
            DatasetSpec::berlinmod(456, 2),
            DatasetSpec::clustered(2, 3),
        ] {
            assert_eq!(generate(&spec).len(), spec.num_points());
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(DatasetSpec::uniform(10, 0).label(), "uniform(10)");
        assert!(DatasetSpec::clustered(3, 0)
            .label()
            .starts_with("clustered(3x"));
        assert_eq!(DatasetSpec::berlinmod(99, 0).label(), "berlinmod(99)");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::berlinmod(200, 9);
        assert_eq!(generate(&spec), generate(&spec));
    }
}
