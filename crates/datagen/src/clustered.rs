//! Clustered point sets: non-overlapping circular clusters of equal size.
//!
//! The paper's experiments on unchained and chained joins (Figures 22, 23 and
//! 25) generate "clusters of points ... All the clusters have the same number
//! of points (4000), have the same area, and are non-overlapping. We vary the
//! number of clusters."

use twoknn_geometry::{Point, Rect};

use crate::rng::StdRng;

/// Configuration for the clustered generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of clusters to generate.
    pub num_clusters: usize,
    /// Number of points in every cluster.
    pub points_per_cluster: usize,
    /// Radius of every cluster (all clusters have the same area).
    pub cluster_radius: f64,
    /// Extent within which cluster centers are placed.
    pub extent: Rect,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's Figure 23 setup: equal-size (4,000-point), equal-area,
    /// non-overlapping clusters inside the default extent.
    pub fn paper_default(num_clusters: usize, seed: u64) -> Self {
        Self {
            num_clusters,
            points_per_cluster: 4_000,
            cluster_radius: 2_000.0,
            extent: crate::default_extent(),
            seed,
        }
    }

    /// Total number of points this configuration will generate.
    pub fn total_points(&self) -> usize {
        self.num_clusters * self.points_per_cluster
    }
}

/// Generates non-overlapping clusters of points per `config`.
///
/// Cluster centers are sampled rejection-style so that clusters do not
/// overlap; if the extent is too crowded to place all clusters after a bounded
/// number of attempts, remaining centers are placed on a regular lattice
/// (preserving the non-overlap property whenever geometrically possible).
pub fn clustered(config: &ClusterConfig) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let r = config.cluster_radius;
    let extent = config.extent;
    let inner = Rect::new(
        extent.min_x + r,
        extent.min_y + r,
        (extent.max_x - r).max(extent.min_x + r),
        (extent.max_y - r).max(extent.min_y + r),
    );

    let mut centers: Vec<(f64, f64)> = Vec::with_capacity(config.num_clusters);
    let max_attempts = 200 * config.num_clusters.max(1);
    let mut attempts = 0;
    while centers.len() < config.num_clusters && attempts < max_attempts {
        attempts += 1;
        let cx = rng.gen_range(inner.min_x..=inner.max_x);
        let cy = rng.gen_range(inner.min_y..=inner.max_y);
        let ok = centers
            .iter()
            .all(|&(ox, oy)| ((cx - ox).powi(2) + (cy - oy).powi(2)).sqrt() >= 2.0 * r);
        if ok {
            centers.push((cx, cy));
        }
    }
    // Fallback lattice placement for any centers we could not fit randomly.
    let mut lattice_i = 0usize;
    while centers.len() < config.num_clusters {
        let per_row = ((extent.width() / (2.0 * r)).floor() as usize).max(1);
        let ix = lattice_i % per_row;
        let iy = lattice_i / per_row;
        lattice_i += 1;
        let cx = extent.min_x + r + ix as f64 * 2.0 * r;
        let cy = extent.min_y + r + iy as f64 * 2.0 * r;
        centers.push((cx, cy));
    }

    let mut points = Vec::with_capacity(config.total_points());
    let mut id = 0u64;
    for &(cx, cy) in &centers {
        for _ in 0..config.points_per_cluster {
            // Uniform inside the circle of radius r.
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let rho = r * rng.gen_range(0.0f64..1.0).sqrt();
            points.push(Point::new(
                id,
                cx + rho * theta.cos(),
                cy + rho * theta.sin(),
            ));
            id += 1;
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_structure() {
        let cfg = ClusterConfig {
            num_clusters: 5,
            points_per_cluster: 200,
            cluster_radius: 1_000.0,
            extent: crate::default_extent(),
            seed: 11,
        };
        let pts = clustered(&cfg);
        assert_eq!(pts.len(), cfg.total_points());
    }

    #[test]
    fn clusters_are_compact() {
        let cfg = ClusterConfig::paper_default(3, 5);
        let pts = clustered(&cfg);
        // Group by cluster index (ids are assigned cluster by cluster).
        for c in 0..3 {
            let chunk = &pts[c * cfg.points_per_cluster..(c + 1) * cfg.points_per_cluster];
            let bbox = Rect::bounding(chunk).unwrap();
            assert!(bbox.width() <= 2.0 * cfg.cluster_radius + 1e-6);
            assert!(bbox.height() <= 2.0 * cfg.cluster_radius + 1e-6);
        }
    }

    #[test]
    fn clusters_do_not_overlap_for_sparse_configs() {
        let cfg = ClusterConfig::paper_default(8, 3);
        let pts = clustered(&cfg);
        // Compute cluster centers as the mean of each id-chunk and assert
        // pairwise distance >= 2r (sampled centers were rejected otherwise).
        let mut centers = Vec::new();
        for c in 0..cfg.num_clusters {
            let chunk = &pts[c * cfg.points_per_cluster..(c + 1) * cfg.points_per_cluster];
            let (sx, sy) = chunk
                .iter()
                .fold((0.0, 0.0), |(ax, ay), p| (ax + p.x, ay + p.y));
            centers.push((sx / chunk.len() as f64, sy / chunk.len() as f64));
        }
        for i in 0..centers.len() {
            for j in (i + 1)..centers.len() {
                let d = ((centers[i].0 - centers[j].0).powi(2)
                    + (centers[i].1 - centers[j].1).powi(2))
                .sqrt();
                assert!(
                    d >= 1.8 * cfg.cluster_radius,
                    "clusters {i} and {j} too close: {d}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ClusterConfig::paper_default(4, 9);
        assert_eq!(clustered(&cfg), clustered(&cfg));
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let cfg = ClusterConfig {
            num_clusters: 2,
            points_per_cluster: 50,
            cluster_radius: 500.0,
            extent: crate::default_extent(),
            seed: 1,
        };
        let pts = clustered(&cfg);
        let mut ids: Vec<u64> = pts.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn overcrowded_config_still_produces_all_clusters() {
        let cfg = ClusterConfig {
            num_clusters: 60,
            points_per_cluster: 10,
            cluster_radius: 20_000.0, // impossible to fit 60 without overlap
            extent: crate::default_extent(),
            seed: 2,
        };
        let pts = clustered(&cfg);
        assert_eq!(pts.len(), 600);
    }
}
