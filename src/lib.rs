//! # two-knn
//!
//! A Rust implementation of *"Spatial Queries with Two kNN Predicates"*
//! (Ahmed M. Aly, Walid G. Aref, Mourad Ouzzani — PVLDB 5(11), VLDB 2012):
//! correct and efficient processing of location-based queries that combine
//! two k-nearest-neighbor predicates (kNN-select and kNN-join).
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! * [`geometry`] — points, rectangles, Euclidean / MINDIST / MAXDIST metrics;
//! * [`index`] — block-based spatial indexes (grid, PR-quadtree, STR R-tree),
//!   MINDIST/MAXDIST block orderings, the locality-based `getkNN`, and work
//!   metrics;
//! * [`datagen`] — workload generators (uniform, clustered, BerlinMOD-like
//!   synthetic moving-object snapshots);
//! * [`core`] — the paper's algorithms: Counting, Block-Marking, unchained
//!   and chained two-join plans, 2-kNN-select, plus a plan/optimizer layer
//!   and the spatially sharded, versioned relation store (snapshot reads,
//!   delta ingest, per-shard background rebuilds, scatter-gather kNN over
//!   shard partitions) behind `core::plan::Database`.
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ## Quick start
//!
//! ```
//! use two_knn::datagen::{berlinmod, BerlinModConfig};
//! use two_knn::index::GridIndex;
//! use two_knn::core::select_join::{block_marking, SelectInnerJoinQuery};
//! use two_knn::geometry::Point;
//!
//! // Two relations over the same city.
//! let mechanics = GridIndex::build(berlinmod(&BerlinModConfig::with_points(2_000, 1)), 32).unwrap();
//! let hotels = GridIndex::build(berlinmod(&BerlinModConfig::with_points(4_000, 2)), 32).unwrap();
//!
//! // "Mechanic shops with their 2 closest hotels, keeping hotels among the
//! //  2 closest to the shopping center."
//! let query = SelectInnerJoinQuery::new(2, 2, Point::anonymous(50_000.0, 50_000.0));
//! let result = block_marking(&mechanics, &hotels, &query);
//! println!("{} pairs, work: {}", result.len(), result.metrics);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use twoknn_core as core;
pub use twoknn_datagen as datagen;
pub use twoknn_geometry as geometry;
pub use twoknn_index as index;

pub use twoknn_core::{ExecutionMode, Pair, QueryError, QueryOutput, Triplet, WorkerPool};
pub use twoknn_geometry::{Point, Rect};
pub use twoknn_index::{GridIndex, Metrics, Neighborhood, QuadtreeIndex, SpatialIndex, StrRTree};
