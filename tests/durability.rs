//! Crash-recovery equivalence for the durability subsystem: a database that
//! ingests through mixed workloads (with mid-stream compactions) and then
//! *crashes* — dropped without a checkpoint — must, after
//! [`Database::open`], answer **exactly** like an instance that never
//! crashed, for every query shape × index family × sharded/unsharded
//! layout. Plus the failure-injection suite: a torn WAL tail keeps every
//! fully written batch and drops the tail cleanly; a flipped byte in a
//! block file or manifest surfaces as [`RecoveryError`], never a panic; and
//! a batch — including a cross-shard move — replays atomically or not at
//! all.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use two_knn::core::joins2::{ChainedJoinQuery, UnchainedJoinQuery};
use two_knn::core::plan::{Database, QuerySpec};
use two_knn::core::select_join::{SelectInnerJoinQuery, SelectOuterJoinQuery};
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::core::store::{DurabilityConfig, ShardConfig, StoreConfig, SyncPolicy, WriteOp};
use two_knn::core::RecoveryError;
use two_knn::{GridIndex, Point, QuadtreeIndex, SpatialIndex, StrRTree};

/// A process-unique scratch directory, removed on drop (best-effort — a
/// panicking test leaves it for the OS tmp reaper).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "twoknn-durability-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The store lays a relation's state under `rel-<hex(name)>/`.
fn rel_dir(root: &Path, name: &str) -> PathBuf {
    let hex: String = name.bytes().map(|b| format!("{b:02x}")).collect();
    root.join(format!("rel-{hex}"))
}

/// The relation's WAL segment files, sorted by segment index.
fn wal_segments(rel: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(rel)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("wal-"))
        })
        .collect();
    segs.sort();
    segs
}

/// Byte ranges `(start, end)` of the complete records in a WAL segment,
/// parsed from the `[len][crc][payload]` framing.
fn record_ranges(buf: &[u8]) -> Vec<(usize, usize)> {
    let mut at = 0;
    let mut out = Vec::new();
    while at + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 8 + len;
        if end > buf.len() {
            break;
        }
        out.push((at, end));
        at = end;
    }
    out
}

/// Irregular, tie-free point cloud over roughly [0, 110]².
fn scattered(n: usize, id_base: u64, seed: u64) -> Vec<Point> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
            let x = (h % 100_000) as f64 * 0.0011;
            let y = ((h / 100_000) % 100_000) as f64 * 0.0011;
            Point::new(id_base + i, x, y)
        })
        .collect()
}

/// The visible point set of a relation, sorted by id — the ground truth two
/// instances are compared on.
fn visible_points(db: &Database, name: &str) -> Vec<Point> {
    let mut pts = db.relation(name).unwrap().all_points();
    pts.sort_unstable_by_key(|p| p.id);
    pts
}

fn id_rows(result: &two_knn::core::plan::QueryResult) -> Vec<Vec<u64>> {
    let mut ids: Vec<Vec<u64>> = result.rows().iter().map(|r| r.ids()).collect();
    ids.sort_unstable();
    ids
}

/// Every query shape the planner knows, all touching the mutable relation
/// ("Objects") in a different role.
fn all_query_shapes() -> Vec<QuerySpec> {
    let focal = Point::anonymous(55.0, 55.0);
    vec![
        QuerySpec::TwoSelects {
            relation: "Objects".into(),
            query: TwoSelectsQuery::new(6, focal, 40, Point::anonymous(40.0, 60.0)),
        },
        QuerySpec::SelectInnerOfJoin {
            outer: "Sites".into(),
            inner: "Objects".into(),
            query: SelectInnerJoinQuery::new(2, 3, focal),
        },
        QuerySpec::SelectOuterOfJoin {
            outer: "Objects".into(),
            inner: "Sites".into(),
            query: SelectOuterJoinQuery::new(2, 4, focal),
        },
        QuerySpec::UnchainedJoins {
            a: "Sites".into(),
            b: "Objects".into(),
            c: "Aux".into(),
            query: UnchainedJoinQuery::new(2, 2),
        },
        QuerySpec::ChainedJoins {
            a: "Aux".into(),
            b: "Objects".into(),
            c: "Sites".into(),
            query: ChainedJoinQuery::new(2, 2),
        },
    ]
}

/// Mixed write workload: inserts (some outside the original extent),
/// removes, and moves — including moves that cross shard boundaries.
fn write_stages() -> Vec<Vec<WriteOp>> {
    let mut stage1: Vec<WriteOp> = Vec::new();
    for (i, p) in scattered(30, 10_000, 77).into_iter().enumerate() {
        stage1.push(WriteOp::Upsert(p));
        if i % 3 == 0 {
            stage1.push(WriteOp::Remove(i as u64 * 7));
        }
    }
    let mut stage2: Vec<WriteOp> = Vec::new();
    for (i, p) in scattered(12, 100, 555).into_iter().enumerate() {
        stage2.push(WriteOp::Upsert(Point::new(
            p.id,
            109.0 - (i as f64) * 7.3,
            (i as f64) * 8.9,
        )));
    }
    stage2.push(WriteOp::Upsert(Point::new(20_000, 130.0, 130.0)));
    let mut stage3: Vec<WriteOp> = Vec::new();
    for p in scattered(20, 30_000, 991) {
        stage3.push(WriteOp::Upsert(p));
    }
    stage3.push(WriteOp::Remove(10_001));
    stage3.push(WriteOp::Remove(77));
    vec![stage1, stage2, stage3]
}

fn install_family(db: &mut Database, family: &str, initial: &[Point]) {
    match family {
        "grid" => {
            db.register("Objects", GridIndex::build(initial.to_vec(), 8).unwrap());
        }
        "quadtree" => {
            db.register(
                "Objects",
                QuadtreeIndex::build(initial.to_vec(), 32).unwrap(),
            );
        }
        _ => {
            db.register("Objects", StrRTree::build(initial.to_vec(), 32).unwrap());
        }
    }
}

fn store_config(shards_per_axis: usize, durability: DurabilityConfig) -> StoreConfig {
    StoreConfig {
        compaction_threshold: 48, // small: compactions interleave with ingest
        sharding: ShardConfig::per_axis(shards_per_axis),
        durability,
        ..StoreConfig::default()
    }
}

#[test]
fn crash_recovery_matches_a_never_crashed_instance() {
    let initial = scattered(900, 0, 3);
    let sites = GridIndex::build(scattered(250, 50_000, 4), 6).unwrap();
    let aux = GridIndex::build(scattered(120, 80_000, 9), 5).unwrap();

    for family in ["grid", "quadtree", "rtree"] {
        for shards_per_axis in [1, 3] {
            let tag = format!("{family}-{shards_per_axis}");
            let tmp = TempDir::new(&tag);
            let durable_cfg = store_config(shards_per_axis, DurabilityConfig::at(tmp.path()));

            let mut memory = Database::with_store_config(store_config(
                shards_per_axis,
                DurabilityConfig::Disabled,
            ));
            {
                // Scope the durable instance so it *drops* — no checkpoint,
                // no graceful shutdown: the on-disk state is whatever the
                // WAL and any finished shard spills left behind.
                let mut durable = Database::with_store_config(durable_cfg.clone());
                for db in [&mut durable, &mut memory] {
                    install_family(db, family, &initial);
                    db.register("Sites", sites.clone());
                    db.register("Aux", aux.clone());
                }
                for (stage, ops) in write_stages().iter().enumerate() {
                    durable.ingest("Objects", ops).unwrap();
                    memory.ingest("Objects", ops).unwrap();
                    if stage == 1 {
                        // Mid-stream: fold dirty shards (persisting block
                        // files on the durable side) so recovery exercises
                        // block files + a WAL suffix, not the WAL alone.
                        durable.compact_now("Objects").unwrap();
                        memory.compact_now("Objects").unwrap();
                    }
                }
                assert!(
                    durable.store_metrics().wal_appends >= 3,
                    "{tag}: every batch must be logged"
                );
            }

            let reopened = Database::open(tmp.path(), durable_cfg.clone()).unwrap();
            assert_eq!(
                reopened.store_metrics().recoveries,
                3,
                "{tag}: all three relations recover"
            );
            assert_eq!(
                reopened.relation_names(),
                vec!["Aux", "Objects", "Sites"],
                "{tag}"
            );
            assert_eq!(
                reopened.relation("Objects").unwrap().num_shards(),
                shards_per_axis * shards_per_axis,
                "{tag}: sharding layout comes back from the manifest"
            );
            for name in ["Objects", "Sites", "Aux"] {
                assert_eq!(
                    visible_points(&reopened, name),
                    visible_points(&memory, name),
                    "{tag}: visible set of {name} diverged after recovery"
                );
            }
            for (i, spec) in all_query_shapes().iter().enumerate() {
                assert_eq!(
                    id_rows(&reopened.execute(spec).unwrap()),
                    id_rows(&memory.execute(spec).unwrap()),
                    "{tag}: query shape #{i} diverged after recovery"
                );
            }

            // Life goes on after recovery: more ingest (compacting the
            // recovered block-file bases into the manifest'd index family)
            // must stay equivalent.
            let more: Vec<WriteOp> = scattered(40, 60_000, 1234)
                .into_iter()
                .map(WriteOp::Upsert)
                .chain([WriteOp::Remove(30_003), WriteOp::Remove(20_000)])
                .collect();
            reopened.ingest("Objects", &more).unwrap();
            memory.ingest("Objects", &more).unwrap();
            reopened.compact_now("Objects").unwrap();
            memory.compact_now("Objects").unwrap();
            assert_eq!(
                visible_points(&reopened, "Objects"),
                visible_points(&memory, "Objects"),
                "{tag}: post-recovery ingest diverged"
            );
            for (i, spec) in all_query_shapes().iter().enumerate() {
                assert_eq!(
                    id_rows(&reopened.execute(spec).unwrap()),
                    id_rows(&memory.execute(spec).unwrap()),
                    "{tag}: query shape #{i} diverged after post-recovery ingest"
                );
            }
        }
    }
}

#[test]
fn checkpoint_trims_wal_and_survives_reopen() {
    let tmp = TempDir::new("checkpoint");
    // Tiny segments so the workload rolls several of them.
    let durability = DurabilityConfig::Enabled {
        dir: tmp.path().to_path_buf(),
        sync: SyncPolicy::EveryN(4),
        segment_bytes: 512,
    };
    let cfg = store_config(2, durability);
    let expected;
    {
        let mut db = Database::with_store_config(cfg.clone());
        db.register(
            "Objects",
            GridIndex::build(scattered(300, 0, 5), 8).unwrap(),
        );
        for chunk in scattered(200, 5_000, 21).chunks(10) {
            let ops: Vec<WriteOp> = chunk.iter().copied().map(WriteOp::Upsert).collect();
            db.ingest("Objects", &ops).unwrap();
        }
        let rel = rel_dir(tmp.path(), "Objects");
        let before = wal_segments(&rel).len();
        assert!(before > 1, "the workload must roll WAL segments");
        db.checkpoint();
        let m = db.store_metrics();
        assert_eq!(m.checkpoints, 1);
        assert!(
            wal_segments(&rel).len() < before,
            "checkpoint must delete covered WAL segments ({before} before)"
        );
        // More writes after the checkpoint land in the surviving tail.
        db.ingest(
            "Objects",
            &[
                WriteOp::Upsert(Point::new(90_000, 3.25, 4.5)),
                WriteOp::Remove(5_001),
            ],
        )
        .unwrap();
        expected = visible_points(&db, "Objects");
    }
    let reopened = Database::open(tmp.path(), cfg).unwrap();
    assert_eq!(visible_points(&reopened, "Objects"), expected);
}

#[test]
fn torn_wal_tail_keeps_fully_written_batches() {
    let tmp = TempDir::new("torn");
    let cfg = store_config(1, DurabilityConfig::at(tmp.path()));
    {
        let mut db = Database::with_store_config(cfg.clone());
        db.register(
            "Objects",
            GridIndex::build(scattered(100, 0, 7), 6).unwrap(),
        );
        let batch1: Vec<WriteOp> = (0..10u64)
            .map(|i| WriteOp::Upsert(Point::new(1_000 + i, 1.0 + i as f64, 2.0)))
            .collect();
        let batch2: Vec<WriteOp> = (0..10u64)
            .map(|i| WriteOp::Upsert(Point::new(2_000 + i, 50.0 + i as f64, 60.0)))
            .collect();
        db.ingest("Objects", &batch1).unwrap();
        db.ingest("Objects", &batch2).unwrap();
    }
    let seg = wal_segments(&rel_dir(tmp.path(), "Objects"))
        .pop()
        .expect("one WAL segment");
    let buf = std::fs::read(&seg).unwrap();
    let ranges = record_ranges(&buf);
    assert_eq!(ranges.len(), 2, "one record per ingest batch");

    // Tear mid-way through the second record — a crash during the append.
    let (start2, end2) = ranges[1];
    let torn_at = start2 + (end2 - start2) / 2;
    std::fs::write(&seg, &buf[..torn_at]).unwrap();

    let db = Database::open(tmp.path(), cfg.clone()).unwrap();
    let pts = visible_points(&db, "Objects");
    assert!(
        (0..10u64).all(|i| pts.iter().any(|p| p.id == 1_000 + i)),
        "the fully written first batch survives"
    );
    assert!(
        pts.iter().all(|p| !(2_000..2_010).contains(&p.id)),
        "the torn second batch is dropped whole"
    );
    assert_eq!(pts.len(), 110);
    drop(db);

    // Now corrupt the *first* record: everything from the first bad record
    // on is untrusted, so only the registration-time base remains.
    std::fs::write(&seg, &buf).unwrap();
    let (start1, end1) = ranges[0];
    let mut flipped = buf.clone();
    flipped[start1 + (end1 - start1) / 2] ^= 0x40;
    std::fs::write(&seg, &flipped).unwrap();
    let db = Database::open(tmp.path(), cfg).unwrap();
    assert_eq!(
        visible_points(&db, "Objects").len(),
        100,
        "a bad record truncates the log from that point on"
    );
}

#[test]
fn corrupt_block_file_and_manifest_surface_recovery_errors() {
    let tmp = TempDir::new("corrupt");
    let cfg = store_config(1, DurabilityConfig::at(tmp.path()));
    {
        let mut db = Database::with_store_config(cfg.clone());
        db.register(
            "Objects",
            GridIndex::build(scattered(120, 0, 11), 6).unwrap(),
        );
    }
    let rel = rel_dir(tmp.path(), "Objects");
    let blk = std::fs::read_dir(&rel)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "blk"))
        .expect("registration persists a block file");

    // Flip one byte deep in the column payload.
    let mut bytes = std::fs::read(&blk).unwrap();
    let at = bytes.len() - 9;
    bytes[at] ^= 0x01;
    std::fs::write(&blk, &bytes).unwrap();
    match Database::open(tmp.path(), cfg.clone()) {
        Err(RecoveryError::Corrupt { path, .. }) => assert_eq!(path, blk),
        Err(other) => panic!("expected Corrupt for the block file, got {other}"),
        Ok(_) => panic!("a corrupt block file must fail recovery"),
    }

    // Restore the block file, corrupt the manifest instead.
    bytes[at] ^= 0x01;
    std::fs::write(&blk, &bytes).unwrap();
    assert!(Database::open(tmp.path(), cfg.clone()).is_ok());
    let manifest = rel.join("MANIFEST");
    let mut mbytes = std::fs::read(&manifest).unwrap();
    let mat = mbytes.len() / 2;
    mbytes[mat] ^= 0x10;
    std::fs::write(&manifest, &mbytes).unwrap();
    assert!(
        matches!(
            Database::open(tmp.path(), cfg),
            Err(RecoveryError::Corrupt { .. })
        ),
        "a corrupt manifest must be an error, not a panic"
    );
}

#[test]
fn cross_shard_move_replays_atomically() {
    let tmp = TempDir::new("atomic");
    let cfg = store_config(2, DurabilityConfig::at(tmp.path()));
    // Two far-apart points so a 2×2 shard map puts them in different shards.
    let initial = vec![
        Point::new(1, 5.0, 5.0),
        Point::new(2, 95.0, 95.0),
        Point::new(3, 5.0, 95.0),
        Point::new(4, 95.0, 5.0),
    ];
    {
        let mut db = Database::with_store_config(cfg.clone());
        db.register("Objects", GridIndex::build(initial.clone(), 4).unwrap());
        // `update` reports prior visibility through the same receipt that
        // feeds the WAL: a move of a known id is `true`, a fresh id `false`.
        assert!(!db.update("Objects", Point::new(9, 50.0, 50.0)).unwrap());
        // One batch: move id 1 across shards AND insert a fresh id. Must be
        // one WAL record — all or nothing at replay.
        db.ingest(
            "Objects",
            &[
                WriteOp::Upsert(Point::new(1, 94.0, 94.0)),
                WriteOp::Upsert(Point::new(77_777, 20.0, 20.0)),
            ],
        )
        .unwrap();
        assert!(db.update("Objects", Point::new(1, 93.0, 93.0)).unwrap());
    }
    let seg = wal_segments(&rel_dir(tmp.path(), "Objects")).pop().unwrap();
    let buf = std::fs::read(&seg).unwrap();
    let ranges = record_ranges(&buf);
    assert_eq!(
        ranges.len(),
        3,
        "one record per batch, even for multi-shard batches"
    );

    // Crash inside the *move* batch (record 2): replay must restore the
    // pre-batch state — id 1 still at (5, 5), id 77777 absent, never a
    // half-applied move (id 1 present twice or nowhere).
    let (start2, end2) = ranges[1];
    std::fs::write(&seg, &buf[..start2 + (end2 - start2) / 2]).unwrap();
    let db = Database::open(tmp.path(), cfg).unwrap();
    let pts = visible_points(&db, "Objects");
    let ones: Vec<&Point> = pts.iter().filter(|p| p.id == 1).collect();
    assert_eq!(ones.len(), 1, "id 1 exists exactly once");
    assert_eq!((ones[0].x, ones[0].y), (5.0, 5.0), "…at its pre-batch spot");
    assert!(pts.iter().any(|p| p.id == 9), "the earlier record replays");
    assert!(
        pts.iter().all(|p| p.id != 77_777),
        "nothing of the torn batch replays"
    );
}
