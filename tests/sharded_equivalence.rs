//! Sharded-vs-unsharded equivalence: a relation split into spatial shards
//! (independent deltas, per-shard compactions, scatter-gather kNN over the
//! composed snapshot) must answer **identically** to the single-shard
//! layout — for every query shape, every index family, and through mixed
//! ingest with mid-stream per-shard compactions. Plus the pruning
//! regression: a clustered kNN-select against a sharded relation must visit
//! only the shards whose MINDIST² qualifies against the running τ².

use two_knn::core::joins2::{ChainedJoinQuery, UnchainedJoinQuery};
use two_knn::core::plan::{Database, QuerySpec};
use two_knn::core::select_join::{SelectInnerJoinQuery, SelectOuterJoinQuery};
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::core::store::{ShardConfig, StoreConfig, WriteOp};
use two_knn::index::{brute_force_knn, get_knn_in, ScratchSpace};
use two_knn::{GridIndex, Metrics, Point, QuadtreeIndex, SpatialIndex, StrRTree};

/// Irregular, tie-free point cloud over roughly [0, 110]².
fn scattered(n: usize, id_base: u64, seed: u64) -> Vec<Point> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
            let x = (h % 100_000) as f64 * 0.0011;
            let y = ((h / 100_000) % 100_000) as f64 * 0.0011;
            Point::new(id_base + i, x, y)
        })
        .collect()
}

/// All result rows as a sorted list of id tuples.
fn id_rows(result: &two_knn::core::plan::QueryResult) -> Vec<Vec<u64>> {
    let mut ids: Vec<Vec<u64>> = result.rows().iter().map(|r| r.ids()).collect();
    ids.sort_unstable();
    ids
}

/// Every query shape the planner knows, all touching the mutable sharded
/// relation ("Objects") in a different role.
fn all_query_shapes() -> Vec<QuerySpec> {
    let focal = Point::anonymous(55.0, 55.0);
    vec![
        QuerySpec::TwoSelects {
            relation: "Objects".into(),
            query: TwoSelectsQuery::new(6, focal, 40, Point::anonymous(40.0, 60.0)),
        },
        QuerySpec::SelectInnerOfJoin {
            outer: "Sites".into(),
            inner: "Objects".into(),
            query: SelectInnerJoinQuery::new(2, 3, focal),
        },
        QuerySpec::SelectOuterOfJoin {
            outer: "Objects".into(),
            inner: "Sites".into(),
            query: SelectOuterJoinQuery::new(2, 4, focal),
        },
        QuerySpec::UnchainedJoins {
            a: "Sites".into(),
            b: "Objects".into(),
            c: "Aux".into(),
            query: UnchainedJoinQuery::new(2, 2),
        },
        QuerySpec::ChainedJoins {
            a: "Aux".into(),
            b: "Objects".into(),
            c: "Sites".into(),
            query: ChainedJoinQuery::new(2, 2),
        },
    ]
}

/// Mixed write workload, staged so compactions can run mid-stream: inserts
/// (some outside the original extent), removes, and moves — including moves
/// that cross shard boundaries.
fn write_stages() -> Vec<Vec<WriteOp>> {
    let mut stage1: Vec<WriteOp> = Vec::new();
    for (i, p) in scattered(30, 10_000, 77).into_iter().enumerate() {
        stage1.push(WriteOp::Upsert(p));
        if i % 3 == 0 {
            stage1.push(WriteOp::Remove(i as u64 * 7));
        }
    }
    // Cross-shard moves: relocate original points to far-away positions.
    let mut stage2: Vec<WriteOp> = Vec::new();
    for (i, p) in scattered(12, 100, 555).into_iter().enumerate() {
        stage2.push(WriteOp::Upsert(Point::new(
            p.id,
            109.0 - (i as f64) * 7.3,
            (i as f64) * 8.9,
        )));
    }
    stage2.push(WriteOp::Upsert(Point::new(20_000, 130.0, 130.0)));
    // And a third stage that re-dirties freshly compacted shards.
    let mut stage3: Vec<WriteOp> = Vec::new();
    for p in scattered(20, 30_000, 991) {
        stage3.push(WriteOp::Upsert(p));
    }
    stage3.push(WriteOp::Remove(10_001));
    stage3.push(WriteOp::Remove(77)); // maybe already gone: ineffective is fine
    vec![stage1, stage2, stage3]
}

fn install_family(db: &mut Database, family: &str, initial: &[Point]) {
    match family {
        "grid" => {
            db.register("Objects", GridIndex::build(initial.to_vec(), 8).unwrap());
        }
        "quadtree" => {
            db.register(
                "Objects",
                QuadtreeIndex::build(initial.to_vec(), 32).unwrap(),
            );
        }
        _ => {
            db.register("Objects", StrRTree::build(initial.to_vec(), 32).unwrap());
        }
    }
}

#[test]
fn sharded_matches_unsharded_for_all_query_shapes_and_families() {
    let initial = scattered(900, 0, 3);
    let sites = GridIndex::build(scattered(250, 50_000, 4), 6).unwrap();
    let aux = GridIndex::build(scattered(120, 80_000, 9), 5).unwrap();

    for family in ["grid", "quadtree", "rtree"] {
        let mut sharded = Database::with_store_config(StoreConfig {
            compaction_threshold: usize::MAX, // compactions only when forced
            sharding: ShardConfig::per_axis(3),
            ..StoreConfig::default()
        });
        let mut flat = Database::new();
        for db in [&mut sharded, &mut flat] {
            install_family(db, family, &initial);
            db.register("Sites", sites.clone());
            db.register("Aux", aux.clone());
        }
        {
            let snap = sharded.relation("Objects").unwrap();
            assert_eq!(snap.num_shards(), 9, "{family}: 3×3 sharding requested");
            assert!(
                snap.partitions().is_some_and(|parts| parts.len() == 9),
                "{family}: composed snapshot must expose the partition tier"
            );
        }

        for (stage, ops) in write_stages().iter().enumerate() {
            sharded.ingest("Objects", ops).unwrap();
            flat.ingest("Objects", ops).unwrap();
            if stage == 1 {
                // Mid-stream: fold the sharded side's dirty shards only —
                // the two layouts now differ in base/delta split but must
                // not differ in answers.
                sharded
                    .compact_now("Objects")
                    .unwrap()
                    .expect("stages left dirty shards");
                assert!(sharded.store_metrics().shards_compacted > 0);
            }

            let ssnap = sharded.relation("Objects").unwrap();
            let fsnap = flat.relation("Objects").unwrap();
            assert_eq!(ssnap.num_points(), fsnap.num_points(), "{family}@{stage}");
            ssnap
                .check_overlay_invariants()
                .unwrap_or_else(|e| panic!("{family}@{stage}: shard invariants: {e}"));

            // Exact Neighborhood equality of the composed scatter-gather
            // read path against the flat snapshot and brute force.
            let mut scratch = ScratchSpace::default();
            for (qi, q) in scattered(40, 0, 40_500 + stage as u64)
                .into_iter()
                .enumerate()
            {
                let k = 1 + qi % 7;
                let q = Point::anonymous(q.x, q.y);
                let mut m = Metrics::default();
                let via_shards = get_knn_in(&*ssnap, &q, k, &mut m, &mut scratch);
                let via_flat = get_knn_in(&*fsnap, &q, k, &mut m, &mut scratch);
                assert_eq!(
                    via_shards, via_flat,
                    "{family}@{stage}: kNN(q#{qi}, k={k}) diverged"
                );
                assert_eq!(via_shards, brute_force_knn(&*ssnap, &q, k));
            }

            for (i, spec) in all_query_shapes().iter().enumerate() {
                assert_eq!(
                    id_rows(&sharded.execute(spec).unwrap()),
                    id_rows(&flat.execute(spec).unwrap()),
                    "{family}@{stage}: query shape #{i} diverged"
                );
            }
        }
    }
}

#[test]
fn clustered_knn_scans_only_mindist_qualified_shards() {
    // A dense cluster in one corner plus a sparse spread everywhere: a kNN
    // query inside the cluster resolves entirely from nearby shards, and the
    // far shards must be pruned by shard-level MINDIST — without ever being
    // scanned.
    let mut pts: Vec<Point> = (0..400u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            Point::new(
                i,
                10.0 + (h % 1000) as f64 * 0.0021,
                10.0 + ((h / 1000) % 1000) as f64 * 0.0023,
            )
        })
        .collect();
    pts.extend((0..60u64).map(|i| {
        let h = (i ^ 17).wrapping_mul(0x2545F4914F6CDD1D);
        Point::new(
            10_000 + i,
            (h % 1000) as f64 * 0.1,
            ((h / 1000) % 1000) as f64 * 0.1,
        )
    }));

    let mut db = Database::with_store_config(StoreConfig {
        sharding: ShardConfig::per_axis(4),
        ..StoreConfig::default()
    });
    db.register("Objects", GridIndex::build(pts, 10).unwrap());
    let snap = db.relation("Objects").unwrap();
    let parts = snap.partitions().expect("sharded snapshot has partitions");
    let populated = parts.iter().filter(|p| !p.is_empty()).count();
    assert!(populated > 4, "spread points must populate many shards");

    let q = Point::anonymous(11.0, 11.0);
    let k = 5;
    let mut m = Metrics::default();
    let mut scratch = ScratchSpace::default();
    let hood = get_knn_in(&*snap, &q, k, &mut m, &mut scratch);
    assert_eq!(hood.len(), k);
    assert_eq!(hood, brute_force_knn(&*snap, &q, k));

    assert!(m.shards_pruned > 0, "far shards must be MINDIST-pruned");
    assert!(
        (m.shards_scanned as usize) < populated,
        "scanned {} of {populated} populated shards — no shard pruning",
        m.shards_scanned
    );
    assert_eq!(
        m.shards_scanned + m.shards_pruned,
        populated as u64,
        "every populated shard is either scanned or pruned"
    );

    // Every scanned shard's MINDIST² must qualify against the final τ²; the
    // scatter-gather driver visits shards in MINDIST order, so the scanned
    // set is exactly the MINDIST-qualified prefix (ties aside).
    let tau_sq = hood.radius() * hood.radius();
    let qualified = parts
        .iter()
        .filter(|p| !p.is_empty() && p.mindist_sq(&q) <= tau_sq)
        .count();
    assert!(
        m.shards_scanned as usize <= qualified + 1,
        "scanned {} shards but only {qualified} qualify against τ²",
        m.shards_scanned
    );
}
