//! Integration tests of the observability subsystem: `EXPLAIN` stability
//! across index families and filter placements, `EXPLAIN ANALYZE` counter
//! reconciliation against the global [`Metrics`] delta, latency-histogram
//! consistency under concurrent execution, lifecycle events, retained
//! traces, and the exportable metrics report (text + JSON lines).

use std::collections::BTreeSet;

use two_knn::core::obs::counter_fields;
use two_knn::core::plan::{Database, QuerySpec};
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::core::store::{StoreConfig, WriteOp};
use two_knn::core::{EventKind, HistogramKind, OpTrace, TraceConfig};
use two_knn::{GridIndex, Metrics, Point, QuadtreeIndex, StrRTree};

/// Irregular, tie-free point cloud over roughly [0, 110]².
fn scattered(n: usize, seed: u64) -> Vec<Point> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
            let x = (h % 100_000) as f64 * 0.0011;
            let y = ((h / 100_000) % 100_000) as f64 * 0.0011;
            Point::new(i, x, y)
        })
        .collect()
}

fn db_with(family: &str, n: usize) -> Database {
    let pts = scattered(n, 7);
    let mut db = Database::new();
    match family {
        "grid" => db.register("Objects", GridIndex::build(pts, 8).unwrap()),
        "quadtree" => db.register("Objects", QuadtreeIndex::build(pts, 32).unwrap()),
        _ => db.register("Objects", StrRTree::build(pts, 32).unwrap()),
    };
    let stations = scattered(60, 21);
    db.register("Stations", GridIndex::build(stations, 4).unwrap());
    db
}

const PRE_QUERY: &str = "FIND (Objects WHERE INSIDE(RECT(10, 10, 80, 80))) WHERE KNN(7, 45, 45)";
const POST_QUERY: &str = "FIND Objects WHERE KNN(9, 45, 45) AND ID <= 250";

// -------------------------------------------------------------------------
// (a) EXPLAIN stability
// -------------------------------------------------------------------------

#[test]
fn explain_is_stable_across_families_and_filter_placements() {
    for family in ["grid", "quadtree", "rtree"] {
        let db = db_with(family, 400);

        // Pre-kNN placement: the filter disappears into the kNN kernel —
        // one operator, marked pre-filtered, with the rewrite line present.
        let pre = db.explain(PRE_QUERY).unwrap();
        assert_eq!(pre.query.as_deref(), Some(PRE_QUERY), "{family}");
        assert!(pre.ast.is_some() && pre.logical.is_some(), "{family}");
        assert_eq!(pre.rewrites.len(), 1, "{family}");
        assert!(
            pre.rewrites[0].starts_with("pre-kNN filter on `Objects`"),
            "{family}: {}",
            pre.rewrites[0]
        );
        assert_eq!(pre.root.children.len(), 0, "{family}: pre is one operator");
        assert!(
            pre.root.detail.contains("pre-filtered"),
            "{family}: {}",
            pre.root.detail
        );

        // Post-kNN placement: a residual-filter operator wraps the kNN
        // select.
        let post = db.explain(POST_QUERY).unwrap();
        assert_eq!(post.rewrites.len(), 1, "{family}");
        assert!(
            post.rewrites[0].starts_with("post-kNN filter on `Objects`"),
            "{family}: {}",
            post.rewrites[0]
        );
        assert_eq!(post.root.name, "residual-filter", "{family}");
        assert_eq!(post.root.children.len(), 1, "{family}");
        assert_eq!(post.root.num_ops(), 2, "{family}");

        // The rendering is deterministic (same snapshot, same text) and
        // carries every stage of the decision chain.
        let rendered = pre.render();
        assert_eq!(
            rendered,
            db.explain(PRE_QUERY).unwrap().render(),
            "{family}"
        );
        for stage in [
            "query:",
            "ast:",
            "logical:",
            "rewrite:",
            "strategy:",
            "plan:",
        ] {
            assert!(rendered.contains(stage), "{family}: missing {stage}");
        }
    }
}

#[test]
fn explain_pinned_grid_plan_renders_exactly() {
    // One fully pinned rendering, asserted verbatim: any drift in the
    // explain format or in the optimizer's choice for this setup is a
    // deliberate change, not an accident.
    let db = db_with("grid", 400);
    let expected = "\
query:    FIND (Objects WHERE INSIDE(RECT(10, 10, 80, 80))) WHERE KNN(7, 45, 45)
ast:      FIND (Objects WHERE INSIDE(RECT(10, 10, 80, 80))) WHERE KNN(7, 45, 45)
logical:  σ[k=7, f=(45, 45)](filter[INSIDE(RECT(10, 10, 80, 80))](Objects))
rewrite:  pre-kNN filter on `Objects`: INSIDE(RECT(10, 10, 80, 80)) (pushed below the kNN predicates)
strategy: select/FilteredKernel
plan:
  knn-select [select/FilteredKernel] -> Points (k=7 focal=(45, 45) pre-filtered)
";
    assert_eq!(db.explain(PRE_QUERY).unwrap().render(), expected);
}

#[test]
fn explain_spec_skips_the_parser_stages() {
    let db = db_with("grid", 300);
    let spec = QuerySpec::TwoSelects {
        relation: "Objects".into(),
        query: TwoSelectsQuery::new(
            3,
            Point::anonymous(20.0, 20.0),
            5,
            Point::anonymous(70.0, 70.0),
        ),
    };
    let explain = db.explain_spec(&spec).unwrap();
    assert!(explain.query.is_none() && explain.ast.is_none() && explain.logical.is_none());
    assert!(explain.rewrites.is_empty());
    let rendered = explain.render();
    assert!(!rendered.contains("query:") && !rendered.contains("ast:"));
    assert!(rendered.contains("strategy:") && rendered.contains("plan:"));
}

// -------------------------------------------------------------------------
// (b) EXPLAIN ANALYZE reconciliation
// -------------------------------------------------------------------------

/// Counters that only ever grow along the operator tree (no operator resets
/// them), so parent-exclusive + children-inclusive must reassemble the
/// parent's inclusive value exactly.
fn monotone(metrics: &Metrics) -> Vec<(&'static str, u64)> {
    counter_fields(metrics)
        .into_iter()
        .filter(|(name, _)| *name != "tuples_emitted")
        .collect()
}

fn assert_reconciles(trace: &OpTrace, result_metrics: &Metrics) {
    // Root inclusive == the query's global metrics delta, field for field.
    assert_eq!(
        counter_fields(&trace.inclusive).to_vec(),
        counter_fields(result_metrics).to_vec(),
        "root inclusive must equal the result's metrics"
    );
    // At every node: exclusive + Σ children inclusive == inclusive, for
    // every monotone counter.
    fn walk(node: &OpTrace) {
        let mut reassembled = node.exclusive();
        for child in &node.children {
            reassembled += child.inclusive;
        }
        assert_eq!(
            monotone(&reassembled),
            monotone(&node.inclusive),
            "operator `{}` does not reconcile",
            node.name
        );
        for child in &node.children {
            walk(child);
        }
    }
    walk(trace);
}

#[test]
fn explain_analyze_reconciles_on_a_filtered_knn_select() {
    let db = db_with("grid", 500);
    let analyzed = db.explain_analyze(POST_QUERY).unwrap();
    assert_eq!(analyzed.trace.name, "residual-filter");
    assert_eq!(analyzed.trace.children.len(), 1, "child knn-select span");
    assert_eq!(analyzed.trace.rows, analyzed.result.num_rows());
    assert_reconciles(&analyzed.trace, &analyzed.result.metrics());
    // The annotated rendering carries both the plan and the executed tree.
    let rendered = analyzed.render();
    assert!(rendered.contains("executed:"));
    assert!(rendered.contains("rows="));
    assert!(rendered.contains("wall="));
}

#[test]
fn explain_analyze_reconciles_on_an_unchained_join() {
    let db = db_with("grid", 250);
    let analyzed = db
        .explain_analyze(
            "FIND Objects a, Stations b, Objects c WHERE KNN(a, 2, b) AND KNN(c, 2, b)",
        )
        .or_else(|_| {
            // The textual form of unchained joins differs per grammar; fall
            // back to the spec API, which is what this test is about.
            db.explain_analyze_spec(&QuerySpec::UnchainedJoins {
                a: "Objects".into(),
                b: "Stations".into(),
                c: "Objects".into(),
                query: two_knn::core::joins2::UnchainedJoinQuery::new(2, 2),
            })
        })
        .unwrap();
    assert!(analyzed.result.num_rows() > 0, "join produced rows");
    assert_reconciles(&analyzed.trace, &analyzed.result.metrics());
}

// -------------------------------------------------------------------------
// (c) Histogram consistency under concurrent execution
// -------------------------------------------------------------------------

#[test]
fn histogram_bucket_counts_equal_samples_under_concurrent_batches() {
    let db = std::sync::Arc::new(db_with("grid", 600));
    let spec = QuerySpec::KnnSelect {
        relation: "Objects".into(),
        query: two_knn::core::select::KnnSelectQuery::new(5, Point::anonymous(40.0, 40.0)),
    };
    const THREADS: usize = 4;
    const BATCHES: usize = 8;
    const PER_BATCH: usize = 16;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let db = std::sync::Arc::clone(&db);
            let specs = vec![spec.clone(); PER_BATCH];
            scope.spawn(move || {
                for _ in 0..BATCHES {
                    for result in db.execute_batch(&specs) {
                        result.unwrap();
                    }
                }
            });
        }
    });
    let report = db.metrics_report();
    let queries = report
        .histograms
        .iter()
        .find(|(kind, _)| *kind == HistogramKind::QueryExec)
        .map(|(_, snap)| snap.clone())
        .unwrap();
    let expected = (THREADS * BATCHES * PER_BATCH) as u64;
    assert_eq!(queries.count, expected, "every query recorded one sample");
    assert_eq!(
        queries.buckets.iter().sum::<u64>(),
        expected,
        "bucket occupancy sums to the sample count"
    );
    let (p50, p90, p99) = (
        queries.percentile(0.50),
        queries.percentile(0.90),
        queries.percentile(0.99),
    );
    assert!(p50 <= p90 && p90 <= p99 && p99 <= queries.max_nanos);
    let windows = db
        .metrics_report()
        .histograms
        .iter()
        .find(|(kind, _)| *kind == HistogramKind::BatchWindow)
        .map(|(_, snap)| snap.count)
        .unwrap();
    assert_eq!(windows, (THREADS * BATCHES) as u64, "one window per batch");
}

// -------------------------------------------------------------------------
// Traces, events, report
// -------------------------------------------------------------------------

#[test]
fn tracing_retains_labeled_traces_for_batches_and_adhoc_queries() {
    let mut db = Database::with_store_config(StoreConfig {
        trace: TraceConfig::enabled(),
        ..StoreConfig::default()
    });
    db.register("Objects", GridIndex::build(scattered(300, 3), 8).unwrap());
    assert!(db.tracing_enabled());
    let spec = db.parse_query(PRE_QUERY.replace("10, 10, 80, 80", "5, 5, 90, 90").as_str());
    let spec = spec.unwrap();
    db.execute(&spec).unwrap();
    db.execute_batch(&vec![spec.clone(); 3]);
    let traces = db.drain_traces();
    assert_eq!(traces.len(), 4);
    let labels: BTreeSet<String> = traces.iter().map(|t| t.label.clone()).collect();
    assert!(labels.contains("query"));
    for i in 0..3 {
        assert!(
            labels.contains(&format!("batch[{i}]")),
            "missing batch[{i}]"
        );
    }
    // Sequence numbers are distinct (batch members may retain out of
    // order under the parallel executor); renders are well-formed trees.
    let mut seqs: Vec<u64> = traces.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), traces.len(), "trace seqs must be unique");
    assert!(traces[0].to_string().contains("trace #"));

    // Toggling off stops retention.
    db.set_tracing(false);
    db.execute(&spec).unwrap();
    assert!(db.drain_traces().is_empty());
}

#[test]
fn compaction_emits_events_and_latency_samples() {
    let mut db = Database::with_store_config(StoreConfig {
        compaction_threshold: 1_000_000, // never in the background
        ..StoreConfig::default()
    });
    db.register("Objects", GridIndex::build(scattered(400, 9), 8).unwrap());
    let ops: Vec<WriteOp> = (0..50u64)
        .map(|i| WriteOp::Upsert(Point::new(10_000 + i, 30.0 + i as f64 * 0.3, 40.0)))
        .collect();
    db.ingest("Objects", &ops).unwrap();
    db.compact_now("Objects").unwrap();
    let events = db.drain_events();
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::CompactionStarted));
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::CompactionFinished && e.detail.contains("Objects")));
    assert!(db.drain_events().is_empty(), "drain empties the ring");
    let report = db.metrics_report();
    let ingest = report
        .histograms
        .iter()
        .find(|(kind, _)| *kind == HistogramKind::IngestPublish)
        .map(|(_, snap)| snap.count)
        .unwrap();
    assert_eq!(ingest, 1, "one ingest batch recorded");
    let compactions = report
        .histograms
        .iter()
        .find(|(kind, _)| *kind == HistogramKind::Compaction)
        .map(|(_, snap)| snap.count)
        .unwrap();
    assert!(
        compactions >= 1,
        "compact_now recorded at least one rebuild"
    );
}

#[test]
fn metrics_report_renders_text_and_json_lines() {
    let db = db_with("grid", 300);
    db.query(POST_QUERY).unwrap();
    let report = db.metrics_report();
    assert_eq!(report.relations.len(), 2);
    let objects = report
        .relations
        .iter()
        .find(|r| r.name == "Objects")
        .unwrap();
    assert_eq!(objects.num_points, 300);
    assert_eq!(objects.delta_len, 0);

    let text = report.to_string();
    assert!(text.contains("counters:"));
    assert!(text.contains("query_exec"));
    assert!(text.contains("relation Objects:"));
    assert!(text.contains("pool:"));

    let json = report.to_json_lines();
    for line in json.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        assert!(line.contains("\"type\""), "line: {line}");
    }
    assert!(json.contains("\"type\":\"counter\""));
    assert!(json.contains("\"type\":\"histogram\""));
    assert!(json.contains("\"type\":\"gauge\""));
    assert!(json.contains("\"type\":\"relation\""));
}

#[test]
fn cq_reevaluations_record_latency_and_traced_runs() {
    let mut db = Database::with_store_config(StoreConfig {
        trace: TraceConfig::enabled(),
        ..StoreConfig::default()
    });
    db.register("Objects", GridIndex::build(scattered(400, 5), 8).unwrap());
    let sub = db
        .subscribe_query("FIND Objects WHERE KNN(4, 50, 50)")
        .unwrap();
    db.drain_traces(); // discard the subscribe-time evaluation, if any
    let ops: Vec<WriteOp> = (0..8u64)
        .map(|i| WriteOp::Upsert(Point::new(20_000 + i, 50.0 + i as f64 * 0.01, 50.0)))
        .collect();
    db.ingest("Objects", &ops).unwrap();
    db.pool().wait_idle();
    let reevals = db
        .metrics_report()
        .histograms
        .iter()
        .find(|(kind, _)| *kind == HistogramKind::CqReeval)
        .map(|(_, snap)| snap.count)
        .unwrap();
    assert!(
        reevals >= 1,
        "the write burst re-evaluated the subscription"
    );
    let traces = db.drain_traces();
    assert!(
        traces.iter().any(|t| t.label.starts_with("cq sub#")),
        "re-evaluation retained a labeled trace: {:?}",
        traces.iter().map(|t| t.label.clone()).collect::<Vec<_>>()
    );
    db.unsubscribe(sub).unwrap();
}
