//! Property-style tests of the index substrate: structural invariants of the
//! three index types, MINDIST/MAXDIST bounds, and correctness of the
//! locality-based kNN against a brute-force oracle (DESIGN.md §5, 6–9).
//! Inputs come from the workspace's deterministic RNG instead of `proptest`.

use two_knn::core::plan::Database;
use two_knn::core::store::{OverlayConfig, StoreConfig, WriteOp};
use two_knn::datagen::rng::StdRng;
use two_knn::geometry::{euclidean, maxdist, mindist};
use two_knn::index::{
    brute_force_knn, check_index_invariants, get_knn, get_knn_best_first, get_knn_in,
    get_knn_scalar, Locality, Metrics, ScratchSpace,
};
use two_knn::{GridIndex, Point, QuadtreeIndex, Rect, SpatialIndex, StrRTree};

const CASES: u64 = 64;

fn points(rng: &mut StdRng, max_n: usize) -> Vec<Point> {
    let n = rng.gen_range(1..max_n + 1);
    (0..n)
        .map(|i| {
            Point::new(
                i as u64,
                rng.gen_range(0.0f64..1000.0),
                rng.gen_range(0.0f64..1000.0),
            )
        })
        .collect()
}

fn sorted_ids(n: &two_knn::Neighborhood) -> Vec<u64> {
    let mut ids = n.ids();
    ids.sort_unstable();
    ids
}

/// Distances from the query to the k-th neighbor must agree even when ties
/// make the chosen ids differ.
fn radii_equal(a: &two_knn::Neighborhood, b: &two_knn::Neighborhood) -> bool {
    (a.radius() - b.radius()).abs() < 1e-9 && a.len() == b.len()
}

/// MINDIST ≤ d(p, q) ≤ MAXDIST for every q inside the rectangle.
#[test]
fn mindist_and_maxdist_bound_point_distances() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let p = Point::anonymous(
            rng.gen_range(-100.0f64..1100.0),
            rng.gen_range(-100.0f64..1100.0),
        );
        let x0 = rng.gen_range(0.0f64..500.0);
        let y0 = rng.gen_range(0.0f64..500.0);
        let w = rng.gen_range(0.1f64..400.0);
        let h = rng.gen_range(0.1f64..400.0);
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        let q = Point::anonymous(
            x0 + rng.gen_range(0.0f64..1.0) * w,
            y0 + rng.gen_range(0.0f64..1.0) * h,
        );
        let d = euclidean(&p, &q);
        assert!(mindist(&p, &r) <= d + 1e-9, "case {case}");
        assert!(d <= maxdist(&p, &r) + 1e-9, "case {case}");
        assert!(mindist(&p, &r) <= maxdist(&p, &r) + 1e-9, "case {case}");
    }
}

/// All three index structures satisfy the structural invariants and preserve
/// every input point.
#[test]
fn indexes_preserve_points_and_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1_000 + case);
        let pts = points(&mut rng, 300);
        let n = pts.len();
        let grid = GridIndex::build(pts.clone(), 6).unwrap();
        let quad = QuadtreeIndex::build(pts.clone(), 16).unwrap();
        let rtree = StrRTree::build(pts, 16).unwrap();
        for index in [
            &grid as &dyn SpatialIndex,
            &quad as &dyn SpatialIndex,
            &rtree as &dyn SpatialIndex,
        ] {
            assert_eq!(index.num_points(), n, "case {case}");
            assert!(check_index_invariants(index).is_ok(), "case {case}");
        }
    }
}

/// The locality-based getkNN and the best-first getkNN both agree with a
/// brute-force oracle (up to distance ties), on every index type.
#[test]
fn knn_matches_brute_force_on_all_indexes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2_000 + case);
        let pts = points(&mut rng, 250);
        let q = Point::anonymous(
            rng.gen_range(-50.0f64..1050.0),
            rng.gen_range(-50.0f64..1050.0),
        );
        let k = rng.gen_range(1..20usize);
        let grid = GridIndex::build(pts.clone(), 5).unwrap();
        let quad = QuadtreeIndex::build(pts.clone(), 12).unwrap();
        let rtree = StrRTree::build(pts, 12).unwrap();
        let mut m = Metrics::default();
        for index in [
            &grid as &dyn SpatialIndex,
            &quad as &dyn SpatialIndex,
            &rtree as &dyn SpatialIndex,
        ] {
            let oracle = brute_force_knn(index, &q, k);
            let locality_based = get_knn(index, &q, k, &mut m);
            let best_first = get_knn_best_first(index, &q, k, &mut m);
            // Ties at the k-th distance can legitimately produce different id
            // choices, so compare ids when radii match strictly, and radii
            // always.
            assert!(radii_equal(&oracle, &locality_based), "case {case}");
            assert!(radii_equal(&oracle, &best_first), "case {case}");
            if oracle.len() == oracle.k() {
                // Every returned member must be at distance <= oracle radius.
                for nb in locality_based.members() {
                    assert!(nb.distance <= oracle.radius() + 1e-9, "case {case}");
                }
            } else {
                // Fewer than k points in the relation: all ids must match.
                assert_eq!(
                    sorted_ids(&locality_based),
                    sorted_ids(&oracle),
                    "case {case}"
                );
            }
        }
    }
}

/// The locality always covers the true k nearest neighbors, and the bounded
/// locality never contains a block farther than the threshold.
#[test]
fn locality_covers_knn_and_respects_threshold() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3_000 + case);
        let pts = points(&mut rng, 300);
        let q = Point::anonymous(rng.gen_range(0.0f64..1000.0), rng.gen_range(0.0f64..1000.0));
        let k = rng.gen_range(1..15usize);
        let threshold = rng.gen_range(10.0f64..500.0);
        let grid = GridIndex::build(pts, 8).unwrap();
        let mut m = Metrics::default();

        let locality = Locality::build(&grid, &q, k, &mut m);
        let covered: std::collections::HashSet<u64> = locality
            .blocks()
            .iter()
            .flat_map(|b| grid.block_points(b.id))
            .map(|p| p.id)
            .collect();
        for nb in brute_force_knn(&grid, &q, k).members() {
            assert!(covered.contains(&nb.point.id), "case {case}");
        }

        let bounded = Locality::build_bounded(&grid, &q, k, threshold, &mut m);
        for b in bounded.blocks() {
            assert!(b.mindist(&q) <= threshold + 1e-9, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------------
// SoA-vs-AoS equivalence (the columnar block layout and batched kernels)
// ---------------------------------------------------------------------------

/// The three index families as trait objects over one point set.
fn build_families(pts: &[Point]) -> [(&'static str, Box<dyn SpatialIndex>); 3] {
    [
        (
            "grid",
            Box::new(GridIndex::build(pts.to_vec(), 6).unwrap()) as Box<dyn SpatialIndex>,
        ),
        (
            "quadtree",
            Box::new(QuadtreeIndex::build(pts.to_vec(), 14).unwrap()),
        ),
        (
            "rtree",
            Box::new(StrRTree::build(pts.to_vec(), 14).unwrap()),
        ),
    ]
}

/// The SoA block columns must reassemble exactly the points the index was
/// built from: per block, the view's length matches the directory count and
/// its MBR bounds every reassembled row; globally, the multiset of rows is
/// the input point set, bit-for-bit.
#[test]
fn soa_blocks_reassemble_the_original_points() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4_000 + case);
        let pts = points(&mut rng, 300);
        for (family, index) in build_families(&pts) {
            let mut rows: Vec<Point> = Vec::new();
            for b in index.blocks() {
                let view = index.block_points(b.id);
                assert_eq!(view.len(), b.count, "{family} case {case}");
                assert_eq!(view.ids().len(), view.xs().len(), "{family} case {case}");
                assert_eq!(view.ids().len(), view.ys().len(), "{family} case {case}");
                for (i, p) in view.iter().enumerate() {
                    // Column accessors and the by-value iterator agree.
                    assert_eq!(p, view.get(i), "{family} case {case}");
                    assert!(b.mbr.contains(&p), "{family} case {case}");
                    rows.push(p);
                }
            }
            let mut expected = pts.clone();
            expected.sort_by_key(|p| p.id);
            rows.sort_by_key(|p| p.id);
            assert_eq!(rows, expected, "{family} case {case}");
        }
    }
}

/// The batched SoA hot path (`get_knn_in`, τ-pruned, shared scratch) returns
/// *identical* neighborhoods to the retained AoS-style scalar baseline and
/// matches the brute-force oracle radius, on every index family — with one
/// `ScratchSpace` reused across all cases, families, and `k`s.
#[test]
fn batched_knn_equals_scalar_baseline_on_all_families() {
    let mut scratch = ScratchSpace::new();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5_000 + case);
        let pts = points(&mut rng, 280);
        let q = Point::anonymous(
            rng.gen_range(-50.0f64..1050.0),
            rng.gen_range(-50.0f64..1050.0),
        );
        let k = rng.gen_range(1..24usize);
        for (family, index) in build_families(&pts) {
            let mut m1 = Metrics::default();
            let mut m2 = Metrics::default();
            let batched = get_knn_in(index.as_ref(), &q, k, &mut m1, &mut scratch);
            let scalar = get_knn_scalar(index.as_ref(), &q, k, &mut m2);
            assert_eq!(batched, scalar, "{family} case {case}");
            let oracle = brute_force_knn(index.as_ref(), &q, k);
            assert!(radii_equal(&oracle, &batched), "{family} case {case}");
            // τ-pruning may only ever *reduce* the scanned work.
            assert!(
                m1.points_scanned <= m2.points_scanned,
                "{family} case {case}: batched scanned more points than scalar"
            );
        }
    }
}

/// Mixed write workload: upserts of new ids, upserts moving existing ids,
/// and removes of base ids.
fn mixed_batch(rng: &mut StdRng, generation: u64, base_n: u64) -> Vec<WriteOp> {
    let mut ops = Vec::new();
    for i in 0..40u64 {
        let roll = rng.gen_range(0..10usize);
        if roll < 5 {
            ops.push(WriteOp::Upsert(Point::new(
                10_000 + generation * 100 + i,
                rng.gen_range(0.0f64..1000.0),
                rng.gen_range(0.0f64..1000.0),
            )));
        } else if roll < 8 {
            ops.push(WriteOp::Upsert(Point::new(
                rng.gen_range(0..base_n as usize) as u64,
                rng.gen_range(0.0f64..1000.0),
                rng.gen_range(0.0f64..1000.0),
            )));
        } else {
            ops.push(WriteOp::Remove(rng.gen_range(0..base_n as usize) as u64));
        }
    }
    ops
}

/// SoA equivalence through the store: snapshots whose blocks are
/// tombstone-filtered base blocks plus overlay-grid cells must give the same
/// batched/scalar/brute-force answers, and never resurrect a removed id.
#[test]
fn soa_equivalence_holds_on_tombstone_filtered_overlay_blocks() {
    let mut scratch = ScratchSpace::new();
    for (family, build) in [("grid", 0usize), ("quadtree", 1usize), ("rtree", 2usize)] {
        let mut rng = StdRng::seed_from_u64(6_000 + build as u64);
        let base = points(&mut rng, 400);
        let base_n = base.len() as u64;
        // Huge threshold: nothing compacts, every read goes through the
        // delta overlay; tiny cells force a partitioned overlay.
        let mut db = Database::with_store_config(StoreConfig {
            compaction_threshold: usize::MAX,
            overlay: OverlayConfig {
                cell_target: 4,
                max_cells_per_axis: 8,
            },
            ..StoreConfig::default()
        });
        match build {
            0 => db.register("R", GridIndex::build(base.clone(), 6).unwrap()),
            1 => db.register("R", QuadtreeIndex::build(base.clone(), 16).unwrap()),
            _ => db.register("R", StrRTree::build(base.clone(), 16).unwrap()),
        };
        let ops = mixed_batch(&mut rng, 0, base_n);
        db.ingest("R", &ops).unwrap();
        let snap = db.relation("R").unwrap();
        assert!(snap.delta_len() > 0, "{family}: delta must be non-empty");

        let removed: std::collections::HashSet<u64> = ops
            .iter()
            .filter_map(|op| match op {
                WriteOp::Remove(id) if !snap.contains_id(*id) => Some(*id),
                _ => None,
            })
            .collect();
        // Tombstone-filtered base blocks never leak a removed id.
        for b in snap.blocks() {
            for p in snap.block_points(b.id) {
                assert!(!removed.contains(&p.id), "{family}: tombstone leaked");
            }
        }
        for case in 0..16u64 {
            let q = Point::anonymous(
                rng.gen_range(-50.0f64..1050.0),
                rng.gen_range(-50.0f64..1050.0),
            );
            let k = rng.gen_range(1..16usize);
            let mut m = Metrics::default();
            let batched = get_knn_in(&*snap, &q, k, &mut m, &mut scratch);
            let scalar = get_knn_scalar(&*snap, &q, k, &mut m);
            assert_eq!(batched, scalar, "{family} case {case}");
            let oracle = brute_force_knn(&*snap, &q, k);
            assert!(radii_equal(&oracle, &batched), "{family} case {case}");
            for nb in batched.members() {
                assert!(!removed.contains(&nb.point.id), "{family} case {case}");
            }
        }
    }
}

/// Drift test: across several mixed ingest batches (and a mid-stream
/// compaction) the batched kNN over the live snapshot stays identical to a
/// from-scratch index over the snapshot's merged points — the SoA overlay
/// and tombstone filtering introduce no generational drift.
#[test]
fn batched_knn_does_not_drift_across_mixed_ingest_batches() {
    let mut rng = StdRng::seed_from_u64(7_000);
    let base = points(&mut rng, 350);
    let base_n = base.len() as u64;
    let mut db = Database::with_store_config(StoreConfig {
        compaction_threshold: usize::MAX,
        overlay: OverlayConfig {
            cell_target: 4,
            max_cells_per_axis: 8,
        },
        ..StoreConfig::default()
    });
    db.register("R", GridIndex::build(base, 6).unwrap());
    let mut scratch = ScratchSpace::new();
    for generation in 0..6u64 {
        db.ingest("R", &mixed_batch(&mut rng, generation, base_n))
            .unwrap();
        if generation == 3 {
            // Fold the accumulated delta mid-stream: later generations run
            // against a rebuilt base plus a fresh overlay.
            db.compact_now("R").unwrap();
        }
        let snap = db.relation("R").unwrap();
        snap.check_overlay_invariants()
            .unwrap_or_else(|e| panic!("generation {generation}: {e}"));
        let reference = GridIndex::build_with_bounds(snap.merged_points(), snap.bounds(), 6)
            .expect("snapshot is non-empty");
        assert_eq!(snap.num_points(), reference.num_points());
        for case in 0..12u64 {
            let q = Point::anonymous(rng.gen_range(0.0f64..1000.0), rng.gen_range(0.0f64..1000.0));
            let k = rng.gen_range(1..12usize);
            let mut m = Metrics::default();
            let live = get_knn_in(&*snap, &q, k, &mut m, &mut scratch);
            let rebuilt = get_knn_in(&reference, &q, k, &mut m, &mut scratch);
            // The k smallest (distance², id) pairs are a unique selection
            // over the same logical point set, whatever the block layout —
            // the overlay/tombstone view and the rebuilt index must agree
            // exactly, members and all.
            assert_eq!(
                live, rebuilt,
                "generation {generation} case {case}: snapshot kNN drifted"
            );
        }
    }
}
