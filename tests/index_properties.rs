//! Property-based tests of the index substrate: structural invariants of the
//! three index types, MINDIST/MAXDIST bounds, and correctness of the
//! locality-based kNN against a brute-force oracle (DESIGN.md §5, 6–9).

use proptest::prelude::*;

use two_knn::geometry::{euclidean, maxdist, mindist};
use two_knn::index::{
    brute_force_knn, check_index_invariants, get_knn, get_knn_best_first, Locality, Metrics,
};
use two_knn::{GridIndex, Point, QuadtreeIndex, Rect, SpatialIndex, StrRTree};

fn points(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..=max_n).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::new(i as u64, x, y))
            .collect()
    })
}

fn sorted_ids(n: &two_knn::Neighborhood) -> Vec<u64> {
    let mut ids = n.ids();
    ids.sort_unstable();
    ids
}

/// Distances from the query to the k-th neighbor must agree even when ties
/// make the chosen ids differ.
fn radii_equal(a: &two_knn::Neighborhood, b: &two_knn::Neighborhood) -> bool {
    (a.radius() - b.radius()).abs() < 1e-9 && a.len() == b.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MINDIST ≤ d(p, q) ≤ MAXDIST for every q inside the rectangle.
    #[test]
    fn mindist_and_maxdist_bound_point_distances(
        px in -100.0f64..1100.0,
        py in -100.0f64..1100.0,
        x0 in 0.0f64..500.0,
        y0 in 0.0f64..500.0,
        w in 0.1f64..400.0,
        h in 0.1f64..400.0,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        let p = Point::anonymous(px, py);
        let q = Point::anonymous(x0 + fx * w, y0 + fy * h);
        let d = euclidean(&p, &q);
        prop_assert!(mindist(&p, &r) <= d + 1e-9);
        prop_assert!(d <= maxdist(&p, &r) + 1e-9);
        prop_assert!(mindist(&p, &r) <= maxdist(&p, &r) + 1e-9);
    }

    /// All three index structures satisfy the structural invariants and
    /// preserve every input point.
    #[test]
    fn indexes_preserve_points_and_invariants(pts in points(300)) {
        let n = pts.len();
        let grid = GridIndex::build(pts.clone(), 6).unwrap();
        let quad = QuadtreeIndex::build(pts.clone(), 16).unwrap();
        let rtree = StrRTree::build(pts, 16).unwrap();
        for index in [&grid as &dyn SpatialIndex, &quad as &dyn SpatialIndex, &rtree as &dyn SpatialIndex] {
            prop_assert_eq!(index.num_points(), n);
            prop_assert!(check_index_invariants(index).is_ok());
        }
    }

    /// The locality-based getkNN and the best-first getkNN both agree with a
    /// brute-force oracle (up to distance ties), on every index type.
    #[test]
    fn knn_matches_brute_force_on_all_indexes(
        pts in points(250),
        qx in -50.0f64..1050.0,
        qy in -50.0f64..1050.0,
        k in 1usize..20,
    ) {
        let q = Point::anonymous(qx, qy);
        let grid = GridIndex::build(pts.clone(), 5).unwrap();
        let quad = QuadtreeIndex::build(pts.clone(), 12).unwrap();
        let rtree = StrRTree::build(pts, 12).unwrap();
        let mut m = Metrics::default();
        for index in [&grid as &dyn SpatialIndex, &quad as &dyn SpatialIndex, &rtree as &dyn SpatialIndex] {
            let oracle = brute_force_knn(index, &q, k);
            let locality_based = get_knn(index, &q, k, &mut m);
            let best_first = get_knn_best_first(index, &q, k, &mut m);
            // Ties at the k-th distance can legitimately produce different id
            // choices, so compare ids when radii match strictly, and radii
            // always.
            prop_assert!(radii_equal(&oracle, &locality_based));
            prop_assert!(radii_equal(&oracle, &best_first));
            if oracle.len() == oracle.k() {
                // Every returned member must be at distance <= oracle radius.
                for nb in locality_based.members() {
                    prop_assert!(nb.distance <= oracle.radius() + 1e-9);
                }
            } else {
                // Fewer than k points in the relation: all ids must match.
                prop_assert_eq!(sorted_ids(&locality_based), sorted_ids(&oracle));
            }
        }
    }

    /// The locality always covers the true k nearest neighbors, and the
    /// bounded locality never contains a block farther than the threshold.
    #[test]
    fn locality_covers_knn_and_respects_threshold(
        pts in points(300),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
        k in 1usize..15,
        threshold in 10.0f64..500.0,
    ) {
        let q = Point::anonymous(qx, qy);
        let grid = GridIndex::build(pts, 8).unwrap();
        let mut m = Metrics::default();

        let locality = Locality::build(&grid, &q, k, &mut m);
        let covered: std::collections::HashSet<u64> = locality
            .blocks()
            .iter()
            .flat_map(|b| grid.block_points(b.id))
            .map(|p| p.id)
            .collect();
        for nb in brute_force_knn(&grid, &q, k).members() {
            prop_assert!(covered.contains(&nb.point.id));
        }

        let bounded = Locality::build_bounded(&grid, &q, k, threshold, &mut m);
        for b in bounded.blocks() {
            prop_assert!(b.mindist(&q) <= threshold + 1e-9);
        }
    }
}
