//! Property-style tests of the index substrate: structural invariants of the
//! three index types, MINDIST/MAXDIST bounds, and correctness of the
//! locality-based kNN against a brute-force oracle (DESIGN.md §5, 6–9).
//! Inputs come from the workspace's deterministic RNG instead of `proptest`.

use two_knn::datagen::rng::StdRng;
use two_knn::geometry::{euclidean, maxdist, mindist};
use two_knn::index::{
    brute_force_knn, check_index_invariants, get_knn, get_knn_best_first, Locality, Metrics,
};
use two_knn::{GridIndex, Point, QuadtreeIndex, Rect, SpatialIndex, StrRTree};

const CASES: u64 = 64;

fn points(rng: &mut StdRng, max_n: usize) -> Vec<Point> {
    let n = rng.gen_range(1..max_n + 1);
    (0..n)
        .map(|i| {
            Point::new(
                i as u64,
                rng.gen_range(0.0f64..1000.0),
                rng.gen_range(0.0f64..1000.0),
            )
        })
        .collect()
}

fn sorted_ids(n: &two_knn::Neighborhood) -> Vec<u64> {
    let mut ids = n.ids();
    ids.sort_unstable();
    ids
}

/// Distances from the query to the k-th neighbor must agree even when ties
/// make the chosen ids differ.
fn radii_equal(a: &two_knn::Neighborhood, b: &two_knn::Neighborhood) -> bool {
    (a.radius() - b.radius()).abs() < 1e-9 && a.len() == b.len()
}

/// MINDIST ≤ d(p, q) ≤ MAXDIST for every q inside the rectangle.
#[test]
fn mindist_and_maxdist_bound_point_distances() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let p = Point::anonymous(
            rng.gen_range(-100.0f64..1100.0),
            rng.gen_range(-100.0f64..1100.0),
        );
        let x0 = rng.gen_range(0.0f64..500.0);
        let y0 = rng.gen_range(0.0f64..500.0);
        let w = rng.gen_range(0.1f64..400.0);
        let h = rng.gen_range(0.1f64..400.0);
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        let q = Point::anonymous(
            x0 + rng.gen_range(0.0f64..1.0) * w,
            y0 + rng.gen_range(0.0f64..1.0) * h,
        );
        let d = euclidean(&p, &q);
        assert!(mindist(&p, &r) <= d + 1e-9, "case {case}");
        assert!(d <= maxdist(&p, &r) + 1e-9, "case {case}");
        assert!(mindist(&p, &r) <= maxdist(&p, &r) + 1e-9, "case {case}");
    }
}

/// All three index structures satisfy the structural invariants and preserve
/// every input point.
#[test]
fn indexes_preserve_points_and_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1_000 + case);
        let pts = points(&mut rng, 300);
        let n = pts.len();
        let grid = GridIndex::build(pts.clone(), 6).unwrap();
        let quad = QuadtreeIndex::build(pts.clone(), 16).unwrap();
        let rtree = StrRTree::build(pts, 16).unwrap();
        for index in [
            &grid as &dyn SpatialIndex,
            &quad as &dyn SpatialIndex,
            &rtree as &dyn SpatialIndex,
        ] {
            assert_eq!(index.num_points(), n, "case {case}");
            assert!(check_index_invariants(index).is_ok(), "case {case}");
        }
    }
}

/// The locality-based getkNN and the best-first getkNN both agree with a
/// brute-force oracle (up to distance ties), on every index type.
#[test]
fn knn_matches_brute_force_on_all_indexes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2_000 + case);
        let pts = points(&mut rng, 250);
        let q = Point::anonymous(
            rng.gen_range(-50.0f64..1050.0),
            rng.gen_range(-50.0f64..1050.0),
        );
        let k = rng.gen_range(1..20usize);
        let grid = GridIndex::build(pts.clone(), 5).unwrap();
        let quad = QuadtreeIndex::build(pts.clone(), 12).unwrap();
        let rtree = StrRTree::build(pts, 12).unwrap();
        let mut m = Metrics::default();
        for index in [
            &grid as &dyn SpatialIndex,
            &quad as &dyn SpatialIndex,
            &rtree as &dyn SpatialIndex,
        ] {
            let oracle = brute_force_knn(index, &q, k);
            let locality_based = get_knn(index, &q, k, &mut m);
            let best_first = get_knn_best_first(index, &q, k, &mut m);
            // Ties at the k-th distance can legitimately produce different id
            // choices, so compare ids when radii match strictly, and radii
            // always.
            assert!(radii_equal(&oracle, &locality_based), "case {case}");
            assert!(radii_equal(&oracle, &best_first), "case {case}");
            if oracle.len() == oracle.k() {
                // Every returned member must be at distance <= oracle radius.
                for nb in locality_based.members() {
                    assert!(nb.distance <= oracle.radius() + 1e-9, "case {case}");
                }
            } else {
                // Fewer than k points in the relation: all ids must match.
                assert_eq!(
                    sorted_ids(&locality_based),
                    sorted_ids(&oracle),
                    "case {case}"
                );
            }
        }
    }
}

/// The locality always covers the true k nearest neighbors, and the bounded
/// locality never contains a block farther than the threshold.
#[test]
fn locality_covers_knn_and_respects_threshold() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3_000 + case);
        let pts = points(&mut rng, 300);
        let q = Point::anonymous(rng.gen_range(0.0f64..1000.0), rng.gen_range(0.0f64..1000.0));
        let k = rng.gen_range(1..15usize);
        let threshold = rng.gen_range(10.0f64..500.0);
        let grid = GridIndex::build(pts, 8).unwrap();
        let mut m = Metrics::default();

        let locality = Locality::build(&grid, &q, k, &mut m);
        let covered: std::collections::HashSet<u64> = locality
            .blocks()
            .iter()
            .flat_map(|b| grid.block_points(b.id))
            .map(|p| p.id)
            .collect();
        for nb in brute_force_knn(&grid, &q, k).members() {
            assert!(covered.contains(&nb.point.id), "case {case}");
        }

        let bounded = Locality::build_bounded(&grid, &q, k, threshold, &mut m);
        for b in bounded.blocks() {
            assert!(b.mindist(&q) <= threshold + 1e-9, "case {case}");
        }
    }
}
