//! End-to-end tests of the declarative query front-end: textual
//! `FIND … WHERE …` queries with residual filters around the kNN
//! predicates must return **exactly** the brute-force answer under the
//! placement semantics the rewriter chose — pre-kNN filters mean "the k
//! nearest *matching* points" (filter-then-kNN), post-kNN filters prune
//! the unfiltered neighborhood (kNN-then-filter) — across all three index
//! families, flat and sharded layouts, and a durable crash/reopen cycle.
//! Invalid placements (a pre-filter on a kNN-join inner relation) must be
//! refused, and `subscribe_query` must maintain the *filtered* result
//! under ingest.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use two_knn::core::plan::{Database, QueryFilters, QuerySpec};
use two_knn::core::select_join::SelectInnerJoinQuery;
use two_knn::core::store::{DurabilityConfig, ShardConfig, StoreConfig, WriteOp};
use two_knn::core::{QueryError, ResultDelta};
use two_knn::geometry::Predicate;
use two_knn::{GridIndex, Point, QuadtreeIndex, Rect, StrRTree};

/// Irregular, tie-free point cloud over roughly [0, 110]².
fn scattered(n: usize, id_base: u64, seed: u64) -> Vec<Point> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
            let x = (h % 100_000) as f64 * 0.0011;
            let y = ((h / 100_000) % 100_000) as f64 * 0.0011;
            Point::new(id_base + i, x, y)
        })
        .collect()
}

fn id_rows(result: &two_knn::core::plan::QueryResult) -> Vec<Vec<u64>> {
    let mut ids: Vec<Vec<u64>> = result.rows().iter().map(|r| r.ids()).collect();
    ids.sort_unstable();
    ids
}

fn dist2(p: &Point, x: f64, y: f64) -> f64 {
    let dx = p.x - x;
    let dy = p.y - y;
    dx * dx + dy * dy
}

/// Independent oracle: the ids of the `k` nearest points to `(x, y)` among
/// those matching `keep` — plain sort, no index, no shared kernels.
fn brute_knn(
    points: &[Point],
    x: f64,
    y: f64,
    k: usize,
    keep: impl Fn(&Point) -> bool,
) -> Vec<u64> {
    let mut matching: Vec<&Point> = points.iter().filter(|p| keep(p)).collect();
    matching.sort_by(|a, b| dist2(a, x, y).total_cmp(&dist2(b, x, y)));
    matching.truncate(k);
    let mut ids: Vec<u64> = matching.iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

fn sorted_singleton_rows(ids: &[u64]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = ids.iter().map(|id| vec![*id]).collect();
    rows.sort_unstable();
    rows
}

fn install_family(db: &mut Database, family: &str, initial: &[Point]) {
    match family {
        "grid" => {
            db.register("Objects", GridIndex::build(initial.to_vec(), 8).unwrap());
        }
        "quadtree" => {
            db.register(
                "Objects",
                QuadtreeIndex::build(initial.to_vec(), 32).unwrap(),
            );
        }
        _ => {
            db.register("Objects", StrRTree::build(initial.to_vec(), 32).unwrap());
        }
    }
}

/// A process-unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("twoknn-querylang-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------------
// Placement equivalence: parsed queries vs the brute-force oracle
// ---------------------------------------------------------------------------

/// Pre-filters compute the k nearest *matching* points; post-filters prune
/// the unfiltered neighborhood. Both placements, plus a query mixing them,
/// across every index family × flat/sharded layout.
#[test]
fn parsed_queries_match_brute_force_in_both_placements() {
    let points = scattered(500, 0, 3);
    let rect = Rect::new(10.0, 10.0, 80.0, 80.0);
    let in_rect = |p: &Point| rect.contains(p);

    let pre_expect = brute_knn(&points, 45.0, 45.0, 7, in_rect);
    let post_expect: Vec<u64> = brute_knn(&points, 45.0, 45.0, 9, |_| true)
        .into_iter()
        .filter(|id| *id <= 250)
        .collect();
    let mixed_expect: Vec<u64> = brute_knn(&points, 45.0, 45.0, 7, in_rect)
        .into_iter()
        .filter(|id| *id >= 50)
        .collect();
    assert!(
        pre_expect.len() == 7 && !post_expect.is_empty() && !mixed_expect.is_empty(),
        "the fixtures must exercise non-trivial results"
    );

    for family in ["grid", "quadtree", "rtree"] {
        for shards_per_axis in [1usize, 3] {
            let tag = format!("{family}/{shards_per_axis}x{shards_per_axis}");
            let mut db = Database::with_store_config(StoreConfig {
                sharding: ShardConfig::per_axis(shards_per_axis),
                ..StoreConfig::default()
            });
            install_family(&mut db, family, &points);

            let pre = db
                .query("FIND (Objects WHERE INSIDE(RECT(10, 10, 80, 80))) WHERE KNN(7, 45, 45)")
                .unwrap();
            assert_eq!(
                id_rows(&pre),
                sorted_singleton_rows(&pre_expect),
                "{tag}: pre"
            );

            let post = db
                .query("FIND Objects WHERE KNN(9, 45, 45) AND ID <= 250")
                .unwrap();
            assert_eq!(
                id_rows(&post),
                sorted_singleton_rows(&post_expect),
                "{tag}: post"
            );

            let mixed = db
                .query(
                    "FIND (Objects WHERE INSIDE(RECT(10, 10, 80, 80))) \
                     WHERE KNN(7, 45, 45) AND ID >= 50",
                )
                .unwrap();
            assert_eq!(
                id_rows(&mixed),
                sorted_singleton_rows(&mixed_expect),
                "{tag}: mixed"
            );
        }
    }
}

/// Two kNN predicates in one condition compile to the conceptual
/// intersection of two *filtered* selects; the answer must match the
/// intersected brute-force neighborhoods under the same pre-filter.
#[test]
fn two_knn_predicates_intersect_filtered_neighborhoods() {
    let points = scattered(400, 0, 17);
    let keep = |p: &Point| p.id % 3 != 0;

    let nbr1 = brute_knn(&points, 30.0, 30.0, 40, keep);
    let nbr2 = brute_knn(&points, 70.0, 70.0, 60, keep);
    let expected: Vec<u64> = nbr1
        .iter()
        .copied()
        .filter(|id| nbr2.contains(id))
        .collect();

    // `ID IN (...)` can't express "id % 3 != 0" compactly, so feed the
    // matching ids explicitly — the parser must handle a long list.
    let matching: Vec<String> = points
        .iter()
        .filter(|p| keep(p))
        .map(|p| p.id.to_string())
        .collect();
    let query = format!(
        "FIND (Objects WHERE ID IN ({})) WHERE KNN(40, 30, 30) AND KNN(60, 70, 70)",
        matching.join(", ")
    );

    for family in ["grid", "quadtree", "rtree"] {
        let mut db = Database::new();
        install_family(&mut db, family, &points);
        let got = db.query(&query).unwrap();
        assert_eq!(
            id_rows(&got),
            sorted_singleton_rows(&expected),
            "{family}: filtered two-selects intersection"
        );
    }
}

// ---------------------------------------------------------------------------
// Degenerate filters: zero matches and τ-neighborhood elimination
// ---------------------------------------------------------------------------

/// A pre-filter that matches nothing yields an empty result (not an
/// error); a post-`FALSE` likewise. A `NOT INSIDE(CIRCLE(...))` filter
/// centered on the focal point eliminates the entire *unfiltered*
/// τ-neighborhood, so a kernel that pruned against unfiltered distances
/// would return too few rows — the masked kernel must keep expanding.
#[test]
fn zero_match_and_tau_eliminating_filters() {
    let points = scattered(400, 0, 3);
    let outside = |p: &Point| dist2(p, 45.0, 45.0) > 30.0 * 30.0;
    let tau_expect = brute_knn(&points, 45.0, 45.0, 6, outside);
    assert_eq!(tau_expect.len(), 6, "enough points survive the ring filter");

    for family in ["grid", "quadtree", "rtree"] {
        let mut db = Database::new();
        install_family(&mut db, family, &points);

        let empty_pre = db
            .query("FIND (Objects WHERE FALSE) WHERE KNN(5, 45, 45)")
            .unwrap();
        assert!(empty_pre.rows().is_empty(), "{family}: FALSE pre-filter");

        let empty_post = db
            .query("FIND Objects WHERE KNN(5, 45, 45) AND FALSE")
            .unwrap();
        assert!(empty_post.rows().is_empty(), "{family}: FALSE post-filter");

        let ring = db
            .query("FIND (Objects WHERE NOT INSIDE(CIRCLE(45, 45, 30))) WHERE KNN(6, 45, 45)")
            .unwrap();
        assert_eq!(
            id_rows(&ring),
            sorted_singleton_rows(&tau_expect),
            "{family}: τ-eliminating ring filter"
        );
    }
}

// ---------------------------------------------------------------------------
// Durable reopen
// ---------------------------------------------------------------------------

/// Parsed queries answer identically before a crash and after recovery
/// from the WAL — and both match the brute-force oracle over the final
/// point set.
#[test]
fn parsed_queries_survive_durable_reopen() {
    let initial = scattered(300, 0, 3);
    let cfg = |durability| StoreConfig {
        compaction_threshold: usize::MAX,
        sharding: ShardConfig::per_axis(2),
        durability,
        ..StoreConfig::default()
    };
    let tmp = TempDir::new("reopen");
    let durable_cfg = cfg(DurabilityConfig::at(tmp.path()));

    let mut live: BTreeMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
    let mut ops: Vec<WriteOp> = Vec::new();
    for p in scattered(40, 10_000, 77) {
        live.insert(p.id, p);
        ops.push(WriteOp::Upsert(p));
    }
    for id in (0..300u64).step_by(9) {
        live.remove(&id);
        ops.push(WriteOp::Remove(id));
    }

    let query =
        "FIND (Objects WHERE INSIDE(RECT(5, 5, 90, 90))) WHERE KNN(8, 40, 40) AND ID <= 10020";
    let final_points: Vec<Point> = live.values().copied().collect();
    let expected: Vec<u64> = brute_knn(&final_points, 40.0, 40.0, 8, |p| {
        Rect::new(5.0, 5.0, 90.0, 90.0).contains(p)
    })
    .into_iter()
    .filter(|id| *id <= 10_020)
    .collect();
    assert!(!expected.is_empty());

    let before = {
        // Scope the durable instance so it drops without a checkpoint —
        // recovery replays the WAL, not a graceful shutdown image.
        let mut db = Database::with_store_config(durable_cfg.clone());
        db.register("Objects", GridIndex::build(initial, 8).unwrap());
        db.ingest("Objects", &ops).unwrap();
        let result = db.query(query).unwrap();
        id_rows(&result)
    };
    assert_eq!(before, sorted_singleton_rows(&expected), "pre-crash");

    let reopened = Database::open(tmp.path(), durable_cfg).unwrap();
    let after = reopened.query(query).unwrap();
    assert_eq!(
        id_rows(&after),
        before,
        "recovery answers the same query identically"
    );
}

// ---------------------------------------------------------------------------
// Refused rewrites
// ---------------------------------------------------------------------------

/// A pre-filter on the inner relation of a kNN-join changes every
/// neighborhood (paper, Figure 2) — execute and subscribe must both refuse
/// it with `InvalidTransformation`, while the post placement of the same
/// predicate is accepted.
#[test]
fn pre_filter_on_a_join_inner_is_refused_end_to_end() {
    let mut db = Database::new();
    db.register(
        "Objects",
        GridIndex::build(scattered(200, 0, 3), 6).unwrap(),
    );
    db.register(
        "Sites",
        GridIndex::build(scattered(80, 50_000, 4), 5).unwrap(),
    );

    let join = QuerySpec::SelectInnerOfJoin {
        outer: "Sites".into(),
        inner: "Objects".into(),
        query: SelectInnerJoinQuery::new(2, 3, Point::anonymous(55.0, 55.0)),
    };
    let predicate = Predicate::InRect(Rect::new(0.0, 0.0, 60.0, 60.0));

    let invalid = join
        .clone()
        .with_filters(QueryFilters::none().pre("Objects", predicate.clone()));
    assert!(
        matches!(
            db.execute(&invalid),
            Err(QueryError::InvalidTransformation { .. })
        ),
        "execute must refuse a pre-filter on the join inner"
    );
    assert!(
        matches!(
            db.subscribe(&invalid, None),
            Err(QueryError::InvalidTransformation { .. })
        ),
        "subscribe must refuse it too"
    );

    // Same predicate as a *post*-filter is a valid plan.
    let valid = join.with_filters(QueryFilters::none().post("Objects", predicate));
    assert!(db.execute(&valid).is_ok(), "post placement stays legal");

    // Unknown relation names in filters surface as UnknownRelation.
    let unknown = QuerySpec::KnnSelect {
        relation: "Objects".into(),
        query: two_knn::core::select::KnnSelectQuery {
            k: 3,
            focal: Point::anonymous(10.0, 10.0),
        },
    }
    .with_filters(QueryFilters::none().pre("Nowhere", Predicate::True));
    // An all-True filter is dropped as a no-op before validation...
    assert!(db.execute(&unknown).is_ok());
    // ...but a real predicate on an unknown name is an error.
    let unknown = QuerySpec::KnnSelect {
        relation: "Objects".into(),
        query: two_knn::core::select::KnnSelectQuery {
            k: 3,
            focal: Point::anonymous(10.0, 10.0),
        },
    }
    .with_filters(QueryFilters::none().pre("Nowhere", Predicate::IdRange { lo: 0, hi: 5 }));
    assert!(matches!(
        db.execute(&unknown),
        Err(QueryError::UnknownRelation { .. })
    ));
}

// ---------------------------------------------------------------------------
// Standing textual queries
// ---------------------------------------------------------------------------

fn apply_deltas(acc: &mut BTreeMap<Vec<u64>, ()>, deltas: &[ResultDelta]) {
    for delta in deltas {
        for row in &delta.removed {
            assert!(
                acc.remove(&row.ids()).is_some(),
                "removed row {:?} was not in the accumulated result",
                row.ids()
            );
        }
        for row in &delta.added {
            assert!(
                acc.insert(row.ids(), ()).is_none(),
                "added row {:?} was already in the accumulated result",
                row.ids()
            );
        }
    }
}

/// A textual filtered standing query maintained across mixed ingest
/// batches must stay delta-equivalent to re-running the same text from
/// scratch at every version.
#[test]
fn subscribe_query_maintains_the_filtered_result_under_ingest() {
    let text = "FIND (Objects WHERE INSIDE(RECT(0, 0, 70, 70))) \
                WHERE KNN(5, 35, 35) AND ID BETWEEN 0 AND 60000";
    let mut db = Database::new();
    db.register(
        "Objects",
        GridIndex::build(scattered(300, 0, 3), 8).unwrap(),
    );

    let sub = db.subscribe_query(text).unwrap();
    let mut acc: BTreeMap<Vec<u64>, ()> = BTreeMap::new();
    apply_deltas(&mut acc, &db.poll(sub).unwrap());
    assert_eq!(
        acc.keys().cloned().collect::<Vec<_>>(),
        id_rows(&db.query(text).unwrap()),
        "initial delta reproduces the from-scratch result"
    );

    for round in 1..=6u64 {
        let mut ops: Vec<WriteOp> = Vec::new();
        for p in scattered(10, 50_000 + round * 100, 1_000 + round * 7) {
            ops.push(WriteOp::Upsert(p));
        }
        for (i, p) in scattered(5, 0, 2_000 + round * 13).into_iter().enumerate() {
            // Moves: reuse existing base ids with fresh positions.
            ops.push(WriteOp::Upsert(Point::new(
                (round * 37 + i as u64 * 13) % 300,
                p.x,
                p.y,
            )));
        }
        for i in 0..3u64 {
            ops.push(WriteOp::Remove((round * 91 + i * 29) % 300));
        }
        db.ingest("Objects", &ops).unwrap();

        apply_deltas(&mut acc, &db.poll(sub).unwrap());
        assert_eq!(
            acc.keys().cloned().collect::<Vec<_>>(),
            id_rows(&db.query(text).unwrap()),
            "round {round}: maintained filtered result diverged from re-execution"
        );
    }
    db.unsubscribe(sub).unwrap();
}

/// Parse errors carry the offending span and pretty-print with a caret
/// line; they surface through `Database::query` as `QueryError::Parse`.
#[test]
fn parse_errors_surface_with_spans() {
    let db = Database::new();
    let err = db.query("FIND Objects WHERE KNN(0, 1, 2)").unwrap_err();
    match err {
        QueryError::Parse(parse) => {
            let rendered = parse.to_string();
            assert!(rendered.contains('^'), "caret rendering: {rendered}");
            assert!(
                rendered.contains("KNN"),
                "mentions the bad atom: {rendered}"
            );
        }
        other => panic!("expected a parse error, got {other:?}"),
    }

    // A syntactically valid query over a missing relation is *not* a parse
    // error — the catalog lookup reports it.
    assert!(matches!(
        db.query("FIND Ghost WHERE KNN(2, 1, 1)"),
        Err(QueryError::UnknownRelation { .. })
    ));
}
