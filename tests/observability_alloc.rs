//! Allocation accounting for the observability layer.
//!
//! The tracing gate promises that with tracing **off**, the query hot path
//! pays one timestamp pair and a few relaxed atomics — no allocations from
//! the instrumentation. This pins it with a counting `#[global_allocator]`
//! wrapper (an integration test is its own crate, so the two `unsafe`
//! trampolines below — plain delegation to `System` — are fine despite the
//! library forbidding `unsafe`).
//!
//! The counter is process-global, so every check runs inside the single
//! `#[test]` below.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use two_knn::core::plan::Database;
use two_knn::core::{HistogramKind, Observability};
use two_knn::{GridIndex, Point};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// [`System`] with an allocation counter in front.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracing_adds_no_allocations_to_the_hot_path() {
    // 1. The registry record path — what every query pays unconditionally —
    //    is allocation-free.
    let obs = Observability::default();
    obs.record(HistogramKind::QueryExec, Duration::from_micros(3)); // warm
    let before = allocations();
    for i in 0..1_000u64 {
        obs.record(HistogramKind::QueryExec, Duration::from_nanos(i * 37));
        std::hint::black_box(obs.trace_enabled());
    }
    assert_eq!(
        allocations() - before,
        0,
        "histogram record / trace gate allocated on the hot path"
    );

    // 2. End to end: warm queries through the Database allocate the same
    //    with the observability layer as a steady state — no per-query
    //    drift from instrumentation (tracing off by default).
    let pts: Vec<Point> = (0..5_000u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            Point::new(i, (h % 999) as f64 * 0.1, ((h >> 16) % 999) as f64 * 0.1)
        })
        .collect();
    let mut db = Database::new();
    db.register("Objects", GridIndex::build(pts, 16).unwrap());
    let spec = db.parse_query("FIND Objects WHERE KNN(8, 50, 50)").unwrap();
    assert!(!db.tracing_enabled());

    let window = |db: &Database| {
        for _ in 0..32 {
            std::hint::black_box(db.execute(&spec).unwrap());
        }
    };
    window(&db); // warm-up: thread scratch, profile memo, snapshot caches
    let start = allocations();
    window(&db);
    let untraced = allocations() - start;
    let start = allocations();
    window(&db);
    let untraced_again = allocations() - start;
    assert!(
        untraced_again <= untraced,
        "untraced steady state drifts: {untraced} then {untraced_again}"
    );

    // 3. Turning tracing on is what costs: the traced window allocates
    //    strictly more (OpTrace nodes, labels, retention) — evidence the
    //    disabled path really skips that work.
    db.set_tracing(true);
    window(&db); // warm the trace ring
    let start = allocations();
    window(&db);
    let traced = allocations() - start;
    assert!(
        traced > untraced_again,
        "traced window ({traced}) should allocate more than untraced ({untraced_again})"
    );
}
