//! Property-based equivalence tests: on arbitrary random inputs, every
//! efficient algorithm of the paper must return exactly the same result set
//! as its conceptually correct QEP. These are the invariants listed in
//! DESIGN.md §5 (1–5).

use proptest::prelude::*;

use two_knn::core::joins2::{
    chained_join_intersection, chained_nested, chained_nested_cached, chained_right_deep,
    unchained_block_marking, unchained_conceptual, ChainedJoinQuery, UnchainedJoinQuery,
};
use two_knn::core::output::{pair_id_set, point_id_set, triplet_id_set};
use two_knn::core::select_join::{
    block_marking, block_marking_with_config, conceptual, counting, select_on_outer_after_join,
    select_on_outer_pushdown, BlockMarkingConfig, SelectInnerJoinQuery, SelectOuterJoinQuery,
};
use two_knn::core::selects2::{two_knn_select, two_selects_conceptual, TwoSelectsQuery};
use two_knn::{GridIndex, Point};

/// Strategy producing a relation of `1..=max_n` points with coordinates in
/// `[0, 100)²`, indexed into a grid.
fn relation(max_n: usize) -> impl Strategy<Value = GridIndex> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..=max_n).prop_map(|coords| {
        let points: Vec<Point> = coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::new(i as u64, x, y))
            .collect();
        GridIndex::build_with_bounds(points, two_knn::Rect::new(0.0, 0.0, 100.0, 100.0), 7)
            .expect("grid over fixed bounds")
    })
}

fn focal() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::anonymous(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: Counting ≡ Block-Marking ≡ conceptual QEP for the
    /// select-inner-of-join query.
    #[test]
    fn select_inner_algorithms_are_equivalent(
        outer in relation(120),
        inner in relation(160),
        f in focal(),
        k_join in 1usize..6,
        k_select in 1usize..8,
    ) {
        let query = SelectInnerJoinQuery::new(k_join, k_select, f);
        let reference = pair_id_set(&conceptual(&outer, &inner, &query).rows);
        prop_assert_eq!(pair_id_set(&counting(&outer, &inner, &query).rows), reference.clone());
        prop_assert_eq!(pair_id_set(&block_marking(&outer, &inner, &query).rows), reference.clone());
        let no_contour = BlockMarkingConfig { contour_pruning: false };
        prop_assert_eq!(
            pair_id_set(&block_marking_with_config(&outer, &inner, &query, &no_contour).rows),
            reference
        );
    }

    /// Invariant 2: pushing a kNN-select below the *outer* relation of a
    /// kNN-join does not change the result (Figure 3).
    #[test]
    fn outer_select_pushdown_is_an_equivalence(
        outer in relation(120),
        inner in relation(120),
        f in focal(),
        k_join in 1usize..5,
        k_select in 1usize..10,
    ) {
        let query = SelectOuterJoinQuery::new(k_join, k_select, f);
        prop_assert_eq!(
            pair_id_set(&select_on_outer_pushdown(&outer, &inner, &query).rows),
            pair_id_set(&select_on_outer_after_join(&outer, &inner, &query).rows)
        );
    }

    /// Invariant 3: the unchained Block-Marking algorithm (either join first)
    /// matches the conceptual independent-joins-plus-∩B plan.
    #[test]
    fn unchained_algorithms_are_equivalent(
        a in relation(80),
        b in relation(120),
        c in relation(80),
        k_ab in 1usize..4,
        k_cb in 1usize..4,
    ) {
        let query = UnchainedJoinQuery::new(k_ab, k_cb);
        let reference = triplet_id_set(&unchained_conceptual(&a, &b, &c, &query).rows);
        prop_assert_eq!(
            triplet_id_set(&unchained_block_marking(&a, &b, &c, &query).rows),
            reference.clone()
        );
        // Starting with the other join answers the symmetric query
        // (C ⋈ B) ∩_B (A ⋈ B); swap the components to compare.
        let swapped = UnchainedJoinQuery::new(k_cb, k_ab);
        let other_order: std::collections::BTreeSet<_> =
            unchained_block_marking(&c, &b, &a, &swapped)
                .rows
                .iter()
                .map(|t| (t.c.id, t.b.id, t.a.id))
                .collect();
        prop_assert_eq!(other_order, reference);
    }

    /// Invariant 4: the four chained-join QEPs are equivalent.
    #[test]
    fn chained_plans_are_equivalent(
        a in relation(60),
        b in relation(90),
        c in relation(90),
        k_ab in 1usize..4,
        k_bc in 1usize..4,
    ) {
        let query = ChainedJoinQuery::new(k_ab, k_bc);
        let reference = triplet_id_set(&chained_right_deep(&a, &b, &c, &query).rows);
        prop_assert_eq!(triplet_id_set(&chained_join_intersection(&a, &b, &c, &query).rows), reference.clone());
        prop_assert_eq!(triplet_id_set(&chained_nested(&a, &b, &c, &query).rows), reference.clone());
        prop_assert_eq!(triplet_id_set(&chained_nested_cached(&a, &b, &c, &query).rows), reference);
    }

    /// Invariant 5: the 2-kNN-select algorithm matches the conceptual
    /// independent-selects-plus-intersection plan, for any k1/k2 relation.
    #[test]
    fn two_selects_algorithms_are_equivalent(
        relation in relation(200),
        f1 in focal(),
        f2 in focal(),
        k1 in 1usize..30,
        k2 in 1usize..150,
    ) {
        let query = TwoSelectsQuery::new(k1, f1, k2, f2);
        prop_assert_eq!(
            point_id_set(&two_knn_select(&relation, &query).rows),
            point_id_set(&two_selects_conceptual(&relation, &query).rows)
        );
    }

    /// The result of the select-inner-of-join query is always a subset of the
    /// full kNN-join and of the cross product of the outer relation with the
    /// focal neighborhood (the formal definition in Section 3).
    #[test]
    fn select_inner_result_is_bounded_by_both_predicates(
        outer in relation(60),
        inner in relation(90),
        f in focal(),
        k_join in 1usize..4,
        k_select in 1usize..6,
    ) {
        let query = SelectInnerJoinQuery::new(k_join, k_select, f);
        let result = block_marking(&outer, &inner, &query);
        // Bound 1: at most k_join pairs per outer point and k_select distinct
        // inner points overall.
        let mut per_outer = std::collections::HashMap::new();
        let mut inner_ids = std::collections::BTreeSet::new();
        for p in &result.rows {
            *per_outer.entry(p.left.id).or_insert(0usize) += 1;
            inner_ids.insert(p.right.id);
        }
        prop_assert!(per_outer.values().all(|&c| c <= k_join));
        prop_assert!(inner_ids.len() <= k_select);
    }
}
