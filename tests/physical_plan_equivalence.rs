//! Executor-level equivalence suite: every [`QuerySpec`] shape under every
//! [`Strategy`], on all three index types (grid, PR-quadtree, STR R-tree),
//! executed serially, over per-call scoped threads, and over the persistent
//! worker pool — all combinations must return the identical result set.
//! This is the contract the physical-operator layer must keep: the strategy
//! choice, the index structure and the execution mode are performance
//! knobs, never semantics knobs.
//!
//! With the `parallel` cargo feature enabled the parallel runs really fan
//! out over worker threads (the pooled runs over the shared lazily-spawned
//! pool); without it they fall back to serial, so the suite passes in both
//! configurations (trivially so in the second).

use std::collections::BTreeSet;

use two_knn::core::joins2::{ChainedJoinQuery, UnchainedJoinQuery};
use two_knn::core::plan::{
    ChainedStrategy, Database, QueryFilters, QueryResult, QuerySpec, RowSchema,
    SelectInnerStrategy, SelectOuterStrategy, SelectStrategy, Strategy, TwoSelectsStrategy,
    UnchainedStrategy,
};
use two_knn::core::select::KnnSelectQuery;
use two_knn::core::select_join::{SelectInnerJoinQuery, SelectOuterJoinQuery};
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::core::ExecutionMode;
use two_knn::datagen::{berlinmod, BerlinModConfig};
use two_knn::geometry::Predicate;
use two_knn::Rect;
use two_knn::{GridIndex, Point, QuadtreeIndex, StrRTree};

/// The strategies available for each query shape.
fn strategies_for(spec: &QuerySpec) -> Vec<Strategy> {
    match spec {
        QuerySpec::SelectInnerOfJoin { .. } => vec![
            Strategy::SelectInner(SelectInnerStrategy::Conceptual),
            Strategy::SelectInner(SelectInnerStrategy::Counting),
            Strategy::SelectInner(SelectInnerStrategy::BlockMarking),
        ],
        QuerySpec::SelectOuterOfJoin { .. } => vec![
            Strategy::SelectOuter(SelectOuterStrategy::SelectAfterJoin),
            Strategy::SelectOuter(SelectOuterStrategy::Pushdown),
        ],
        QuerySpec::UnchainedJoins { .. } => vec![
            Strategy::Unchained(UnchainedStrategy::Conceptual),
            Strategy::Unchained(UnchainedStrategy::BlockMarkingStartWithA),
            Strategy::Unchained(UnchainedStrategy::BlockMarkingStartWithC),
        ],
        QuerySpec::ChainedJoins { .. } => vec![
            Strategy::Chained(ChainedStrategy::RightDeep),
            Strategy::Chained(ChainedStrategy::JoinIntersection),
            Strategy::Chained(ChainedStrategy::NestedJoin),
            Strategy::Chained(ChainedStrategy::NestedJoinCached),
        ],
        QuerySpec::TwoSelects { .. } => vec![
            Strategy::TwoSelects(TwoSelectsStrategy::Conceptual),
            Strategy::TwoSelects(TwoSelectsStrategy::TwoKnnSelect),
        ],
        QuerySpec::KnnSelect { .. } => vec![
            Strategy::Select(SelectStrategy::FilteredKernel),
            Strategy::Select(SelectStrategy::FilterThenScan),
        ],
        // A filtered wrapper compiles against the wrapped shape's strategy.
        QuerySpec::Filtered { spec, .. } => strategies_for(spec),
    }
}

/// Order-independent canonical form of a result.
fn id_set(result: &QueryResult) -> BTreeSet<Vec<u64>> {
    result.rows().iter().map(|r| r.ids()).collect()
}

fn points(n: usize, seed: u64) -> Vec<Point> {
    berlinmod(&BerlinModConfig::with_points(n, seed))
}

/// One catalog per index type, over the same three point sets.
fn databases() -> Vec<(&'static str, Database)> {
    let a = points(700, 41);
    let b = points(1_100, 42);
    let c = points(900, 43);

    let mut grid = Database::new();
    grid.register(
        "A",
        GridIndex::build_with_target_occupancy(a.clone(), 64).unwrap(),
    );
    grid.register(
        "B",
        GridIndex::build_with_target_occupancy(b.clone(), 64).unwrap(),
    );
    grid.register(
        "C",
        GridIndex::build_with_target_occupancy(c.clone(), 64).unwrap(),
    );

    let mut quad = Database::new();
    quad.register("A", QuadtreeIndex::build(a.clone(), 64).unwrap());
    quad.register("B", QuadtreeIndex::build(b.clone(), 64).unwrap());
    quad.register("C", QuadtreeIndex::build(c.clone(), 64).unwrap());

    let mut rtree = Database::new();
    rtree.register("A", StrRTree::build(a, 64).unwrap());
    rtree.register("B", StrRTree::build(b, 64).unwrap());
    rtree.register("C", StrRTree::build(c, 64).unwrap());

    vec![("grid", grid), ("quadtree", quad), ("str-rtree", rtree)]
}

fn specs() -> Vec<(QuerySpec, RowSchema)> {
    let focal = Point::anonymous(52_000.0, 49_000.0);
    vec![
        (
            QuerySpec::SelectInnerOfJoin {
                outer: "A".into(),
                inner: "B".into(),
                query: SelectInnerJoinQuery::new(3, 6, focal),
            },
            RowSchema::Pairs,
        ),
        (
            QuerySpec::SelectOuterOfJoin {
                outer: "A".into(),
                inner: "B".into(),
                query: SelectOuterJoinQuery::new(3, 5, focal),
            },
            RowSchema::Pairs,
        ),
        (
            QuerySpec::UnchainedJoins {
                a: "A".into(),
                b: "B".into(),
                c: "C".into(),
                query: UnchainedJoinQuery::new(2, 3),
            },
            RowSchema::Triplets,
        ),
        (
            QuerySpec::ChainedJoins {
                a: "A".into(),
                b: "B".into(),
                c: "C".into(),
                query: ChainedJoinQuery::new(2, 2),
            },
            RowSchema::Triplets,
        ),
        (
            QuerySpec::TwoSelects {
                relation: "B".into(),
                query: TwoSelectsQuery::new(8, focal, 64, Point::anonymous(48_500.0, 51_500.0)),
            },
            RowSchema::Points,
        ),
        (
            QuerySpec::KnnSelect {
                relation: "B".into(),
                query: KnnSelectQuery { k: 9, focal },
            },
            RowSchema::Points,
        ),
        // Filtered wrapper around a select: pre-filter (masked kernel or
        // filter-then-scan, both strategies above) plus a post residual.
        (
            QuerySpec::KnnSelect {
                relation: "B".into(),
                query: KnnSelectQuery { k: 12, focal },
            }
            .with_filters(
                QueryFilters::none()
                    .pre(
                        "B",
                        Predicate::InRect(Rect::new(45_000.0, 43_000.0, 57_000.0, 54_000.0)),
                    )
                    .post("B", Predicate::IdRange { lo: 0, hi: 800 }),
            ),
            RowSchema::Points,
        ),
        // Filtered wrapper around two selects: both TwoSelects strategies
        // route through the filtered conceptual intersection.
        (
            QuerySpec::TwoSelects {
                relation: "B".into(),
                query: TwoSelectsQuery::new(10, focal, 48, Point::anonymous(48_500.0, 51_500.0)),
            }
            .with_filters(QueryFilters::none().pre(
                "B",
                Predicate::InRect(Rect::new(45_000.0, 43_000.0, 57_000.0, 54_000.0)),
            )),
            RowSchema::Points,
        ),
    ]
}

/// The heart of the suite: for every index type, every query shape, every
/// strategy, serial, scoped-parallel and pooled execution must all agree on
/// the result set.
#[test]
fn every_strategy_and_mode_agrees_on_every_index() {
    let parallel_modes = [
        ExecutionMode::Parallel { threads: 4 },
        ExecutionMode::Pooled,
    ];
    for (index_name, db) in databases() {
        for (spec, schema) in specs() {
            let mut reference: Option<BTreeSet<Vec<u64>>> = None;
            for strategy in strategies_for(&spec) {
                let serial = db
                    .execute_with_strategy_and_mode(&spec, strategy, ExecutionMode::Serial)
                    .unwrap_or_else(|e| panic!("{index_name}/{strategy}: {e}"));
                for mode in parallel_modes {
                    let par = db
                        .execute_with_strategy_and_mode(&spec, strategy, mode)
                        .unwrap_or_else(|e| panic!("{index_name}/{strategy} ({mode:?}): {e}"));

                    // Serial and parallel agree exactly — rows and row order.
                    assert_eq!(
                        serial.rows(),
                        par.rows(),
                        "serial vs {mode:?} rows differ: {index_name}/{strategy}"
                    );
                }
                for row in serial.rows() {
                    assert_eq!(row.schema(), schema);
                }

                // Every strategy agrees with every other (order-independent).
                let ids = id_set(&serial);
                match &reference {
                    None => reference = Some(ids),
                    Some(expected) => assert_eq!(
                        &ids, expected,
                        "strategy disagreement: {index_name}/{strategy}"
                    ),
                }
            }
            assert!(
                reference.map(|r| !r.is_empty()).unwrap_or(false),
                "workload produced an empty result — the equivalence check would be vacuous \
                 ({index_name}/{spec:?})"
            );
        }
    }
}

/// Serial, scoped-parallel and pooled execution must also report identical
/// work counters for the schedule-independent operators (all but the cached
/// chained join, whose per-worker caches legitimately change the hit
/// pattern).
#[test]
fn parallel_metrics_merge_to_serial_totals() {
    let parallel_modes = [
        ExecutionMode::Parallel { threads: 4 },
        ExecutionMode::Pooled,
    ];
    let (_, db) = databases().remove(0);
    for (spec, _) in specs() {
        for strategy in strategies_for(&spec) {
            if strategy == Strategy::Chained(ChainedStrategy::NestedJoinCached) {
                continue;
            }
            let serial = db
                .execute_with_strategy_and_mode(&spec, strategy, ExecutionMode::Serial)
                .unwrap();
            for mode in parallel_modes {
                let par = db
                    .execute_with_strategy_and_mode(&spec, strategy, mode)
                    .unwrap();
                assert_eq!(
                    serial.metrics(),
                    par.metrics(),
                    "metrics diverge under {mode:?} execution: {strategy}"
                );
            }
        }
    }
}

/// `execute_batch` returns, in input order, exactly what per-query `execute`
/// returns.
#[test]
fn execute_batch_matches_individual_execution() {
    let (_, db) = databases().remove(0);
    let batch: Vec<QuerySpec> = specs().into_iter().map(|(s, _)| s).collect();
    let results = db.execute_batch(&batch);
    assert_eq!(results.len(), batch.len());
    for (spec, result) in batch.iter().zip(results) {
        let individual = db.execute(spec).unwrap();
        let batched = result.unwrap();
        assert_eq!(id_set(&batched), id_set(&individual), "{spec:?}");
        assert_eq!(batched.strategy(), individual.strategy());
    }
    // Errors surface per entry without failing the batch.
    let mixed = vec![
        batch[0].clone(),
        QuerySpec::TwoSelects {
            relation: "Missing".into(),
            query: TwoSelectsQuery::new(
                1,
                Point::anonymous(0.0, 0.0),
                1,
                Point::anonymous(1.0, 1.0),
            ),
        },
    ];
    let results = db.execute_batch(&mixed);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
}

/// Batch execution through an explicit tiny pool (parallelism 1 and 2) —
/// the degenerate thread budgets where nested batch-task → block-task
/// submission would deadlock or misbehave if pool scheduling were wrong —
/// must agree with per-query execution.
#[test]
fn execute_batch_agrees_on_tiny_explicit_pools() {
    use two_knn::WorkerPool;
    let a = points(700, 41);
    let b = points(1_100, 42);
    let c = points(900, 43);
    for parallelism in [1, 2] {
        let mut db = Database::with_pool(WorkerPool::new(parallelism));
        db.register(
            "A",
            GridIndex::build_with_target_occupancy(a.clone(), 64).unwrap(),
        );
        db.register(
            "B",
            GridIndex::build_with_target_occupancy(b.clone(), 64).unwrap(),
        );
        db.register(
            "C",
            GridIndex::build_with_target_occupancy(c.clone(), 64).unwrap(),
        );
        let batch: Vec<QuerySpec> = specs().into_iter().map(|(s, _)| s).collect();
        for (spec, result) in batch.iter().zip(db.execute_batch(&batch)) {
            let individual = db.execute(spec).unwrap();
            assert_eq!(
                id_set(&result.unwrap()),
                id_set(&individual),
                "pool parallelism {parallelism}: {spec:?}"
            );
        }
    }
}

/// The compile step exposes the plan without running it, and the explain
/// string names the operator.
#[test]
fn compiled_plans_expose_operator_metadata() {
    let (_, db) = databases().remove(0);
    for (spec, schema) in specs() {
        for strategy in strategies_for(&spec) {
            let plan = db.compile(&spec, strategy).unwrap();
            assert_eq!(plan.strategy(), strategy);
            assert_eq!(plan.schema(), schema);
            assert!(!plan.name().is_empty());
            assert!(plan.explain().contains(plan.name()));
        }
    }
}
