//! Integration tests of the versioned relation store: catalog determinism,
//! delta-overlay vs rebuilt-index equivalence across all three index
//! families (with the overlay forced into multiple grid cells), snapshot
//! isolation under concurrent ingest with forced compactions, and the
//! burst-pruning regression — a clustered write burst must not defeat
//! MINDIST pruning the way the old single-block overlay did.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use two_knn::core::exec::available_threads;
use two_knn::core::joins2::UnchainedJoinQuery;
use two_knn::core::plan::{Database, QuerySpec, Strategy, TwoSelectsStrategy, UnchainedStrategy};
use two_knn::core::select_join::{SelectInnerJoinQuery, SelectOuterJoinQuery};
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::core::store::{OverlayConfig, StoreConfig, WriteOp};
use two_knn::core::WorkerPool;
use two_knn::{GridIndex, Point, QuadtreeIndex, SpatialIndex, StrRTree};

/// Irregular, tie-free point cloud over roughly [0, 110]².
fn scattered(n: usize, id_base: u64, seed: u64) -> Vec<Point> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
            let x = (h % 100_000) as f64 * 0.0011;
            let y = ((h / 100_000) % 100_000) as f64 * 0.0011;
            Point::new(id_base + i, x, y)
        })
        .collect()
}

/// All result rows as a sorted list of id tuples — the order-insensitive
/// equality the equivalence checks compare on.
fn id_rows(result: &two_knn::core::plan::QueryResult) -> Vec<Vec<u64>> {
    let mut ids: Vec<Vec<u64>> = result.rows().iter().map(|r| r.ids()).collect();
    ids.sort_unstable();
    ids
}

// ---------------------------------------------------------------------------
// Catalog determinism + mutation (satellites)
// ---------------------------------------------------------------------------

#[test]
fn relation_names_are_sorted_and_deterministic() {
    // Register in several insertion orders; the reported order must always
    // be the same (sorted), not whatever the hash map happens to produce.
    let orders = [
        ["delta", "alpha", "omega", "beta"],
        ["omega", "beta", "delta", "alpha"],
        ["beta", "omega", "alpha", "delta"],
    ];
    let mut seen: Vec<Vec<String>> = Vec::new();
    for order in orders {
        let mut db = Database::new();
        for name in order {
            db.register(name, GridIndex::build(scattered(40, 0, 11), 4).unwrap());
        }
        seen.push(db.relation_names());
    }
    assert_eq!(seen[0], vec!["alpha", "beta", "delta", "omega"]);
    assert_eq!(seen[0], seen[1]);
    assert_eq!(seen[1], seen[2]);
}

#[test]
fn register_replaces_and_deregister_mutates_the_catalog() {
    let mut db = Database::new();
    assert!(db
        .register("R", GridIndex::build(scattered(50, 0, 1), 4).unwrap())
        .is_none());
    // Replacing returns the replaced relation's last snapshot.
    let replaced = db
        .register("R", GridIndex::build(scattered(80, 0, 2), 4).unwrap())
        .expect("first registration must be returned");
    assert_eq!(replaced.num_points(), 50);
    assert_eq!(db.relation("R").unwrap().num_points(), 80);

    // A query pinned before deregistration keeps working afterwards.
    let spec = QuerySpec::TwoSelects {
        relation: "R".into(),
        query: TwoSelectsQuery::new(
            3,
            Point::anonymous(50.0, 50.0),
            30,
            Point::anonymous(52.0, 52.0),
        ),
    };
    let plan = db.compile_planned(&spec).unwrap();
    let removed = db.deregister("R").expect("R was registered");
    assert_eq!(removed.num_points(), 80);
    assert!(db.relation("R").is_err());
    assert!(db.execute(&spec).is_err(), "catalog no longer resolves R");
    assert_eq!(
        plan.execute(two_knn::ExecutionMode::Serial).num_rows(),
        3,
        "the pinned plan still owns its snapshot"
    );
    assert!(db.deregister("R").is_none());
}

// ---------------------------------------------------------------------------
// Delta overlay vs rebuilt index, across all three index families
// ---------------------------------------------------------------------------

/// The query shapes the equivalence suite runs: both join directions (so the
/// mutable relation serves as outer *and* as inner/locate target) plus a
/// two-select.
fn object_queries() -> Vec<QuerySpec> {
    let focal = Point::anonymous(55.0, 55.0);
    vec![
        QuerySpec::TwoSelects {
            relation: "Objects".into(),
            query: TwoSelectsQuery::new(6, focal, 40, Point::anonymous(40.0, 60.0)),
        },
        QuerySpec::SelectInnerOfJoin {
            outer: "Sites".into(),
            inner: "Objects".into(),
            query: SelectInnerJoinQuery::new(2, 3, focal),
        },
        QuerySpec::SelectOuterOfJoin {
            outer: "Objects".into(),
            inner: "Sites".into(),
            query: SelectOuterJoinQuery::new(2, 4, focal),
        },
    ]
}

/// A write workload: fresh inserts (some outside the original bounds),
/// removes, and moves of existing points.
fn write_workload() -> Vec<WriteOp> {
    let mut ops = Vec::new();
    for (i, p) in scattered(25, 10_000, 77).into_iter().enumerate() {
        ops.push(WriteOp::Upsert(p));
        if i % 3 == 0 {
            ops.push(WriteOp::Remove(i as u64 * 7));
        }
    }
    // Moves: relocate a handful of original points.
    for p in scattered(10, 100, 555) {
        ops.push(WriteOp::Upsert(p));
    }
    // An insert outside the original extent.
    ops.push(WriteOp::Upsert(Point::new(20_000, 130.0, 130.0)));
    ops
}

#[test]
fn delta_overlay_matches_rebuilt_index_across_all_index_families() {
    type Install = Box<dyn Fn(&mut Database)>;
    let initial = scattered(900, 0, 3);
    let sites = GridIndex::build(scattered(300, 50_000, 4), 6).unwrap();
    let families: Vec<(&str, Install)> = vec![
        ("grid", {
            let initial = initial.clone();
            Box::new(move |db: &mut Database| {
                db.register("Objects", GridIndex::build(initial.clone(), 8).unwrap());
            })
        }),
        ("quadtree", {
            let initial = initial.clone();
            Box::new(move |db: &mut Database| {
                db.register(
                    "Objects",
                    QuadtreeIndex::build(initial.clone(), 32).unwrap(),
                );
            })
        }),
        ("rtree", {
            let initial = initial.clone();
            Box::new(move |db: &mut Database| {
                db.register("Objects", StrRTree::build(initial.clone(), 32).unwrap());
            })
        }),
    ];

    for (family, install) in families {
        // A huge threshold (nothing compacts until we ask for it) and a tiny
        // overlay cell target, so even this modest workload exercises a
        // multi-cell partitioned overlay rather than one block.
        let mut db = Database::with_store_config(StoreConfig {
            compaction_threshold: usize::MAX,
            overlay: OverlayConfig {
                cell_target: 4,
                max_cells_per_axis: 8,
            },
            ..StoreConfig::default()
        });
        install(&mut db);
        db.register("Sites", sites.clone());

        db.ingest("Objects", &write_workload()).unwrap();
        let overlay_snap = db.relation("Objects").unwrap();
        assert!(
            overlay_snap.delta_len() > 0,
            "{family}: the workload must leave a delta overlay"
        );
        assert!(
            overlay_snap.overlay_block_count() > 1,
            "{family}: the overlay must be partitioned, got {} block(s)",
            overlay_snap.overlay_block_count()
        );
        overlay_snap
            .check_overlay_invariants()
            .unwrap_or_else(|e| panic!("{family}: overlay invariants: {e}"));
        let overlay: Vec<_> = object_queries()
            .iter()
            .map(|q| id_rows(&db.execute(q).unwrap()))
            .collect();

        // Compact (same index family rebuilt) and re-run.
        db.compact_now("Objects").unwrap().expect("delta non-empty");
        let compacted_snap = db.relation("Objects").unwrap();
        assert_eq!(compacted_snap.delta_len(), 0, "{family}: delta folded");
        assert_eq!(compacted_snap.num_points(), overlay_snap.num_points());
        let compacted: Vec<_> = object_queries()
            .iter()
            .map(|q| id_rows(&db.execute(q).unwrap()))
            .collect();
        assert_eq!(
            overlay, compacted,
            "{family}: delta-overlay reads must equal the rebuilt index"
        );

        // And equal to a from-scratch database over the merged points.
        let mut fresh = Database::new();
        let merged = overlay_snap.merged_points();
        match family {
            "grid" => fresh.register("Objects", {
                let b = overlay_snap.bounds();
                GridIndex::build_with_bounds(merged, b, 8).unwrap()
            }),
            "quadtree" => fresh.register("Objects", QuadtreeIndex::build(merged, 32).unwrap()),
            _ => fresh.register("Objects", StrRTree::build(merged, 32).unwrap()),
        };
        fresh.register("Sites", sites.clone());
        let from_scratch: Vec<_> = object_queries()
            .iter()
            .map(|q| id_rows(&fresh.execute(q).unwrap()))
            .collect();
        assert_eq!(
            overlay, from_scratch,
            "{family}: overlay reads must equal a from-scratch index"
        );
    }
}

// ---------------------------------------------------------------------------
// Snapshot isolation under concurrent ingest + forced compactions
// ---------------------------------------------------------------------------

/// Number of points in each generation's cluster.
const GEN_SIZE: u64 = 8;

/// The cluster of generation `g`: GEN_SIZE points around the far focal
/// point, with distinct (tie-free) offsets, ids `g*100 .. g*100+GEN_SIZE`.
fn generation(g: u64) -> Vec<Point> {
    (0..GEN_SIZE)
        .map(|i| {
            Point::new(
                g * 100 + i,
                200.0 + 0.10 + 0.013 * i as f64,
                200.0 - 0.07 - 0.009 * i as f64,
            )
        })
        .collect()
}

/// The focal point next to every generation cluster; the background cloud
/// lives in [0, 110]², at distance ≥ ~127 — so the 8-NN of the focal point
/// is exactly the currently visible generation, provided the snapshot is
/// consistent.
fn far_focal() -> Point {
    Point::anonymous(200.0, 200.0)
}

/// Asserts a result is exactly one whole generation and returns its number.
fn observed_generation(result: &two_knn::core::plan::QueryResult, context: &str) -> u64 {
    let rows = id_rows(result);
    assert_eq!(
        rows.len(),
        GEN_SIZE as usize,
        "{context}: expected one whole generation, got {rows:?}"
    );
    let g = rows[0][0] / 100;
    let expected: Vec<Vec<u64>> = (0..GEN_SIZE).map(|i| vec![g * 100 + i]).collect();
    assert_eq!(
        rows, expected,
        "{context}: torn read — rows mix generations or drop members"
    );
    g
}

#[test]
fn snapshot_isolation_holds_under_concurrent_ingest_and_compaction() {
    const GENERATIONS: u64 = 40;

    // Pool size honors TWOKNN_THREADS (the CI matrix pins 1 and 2): on a
    // 1-pool compactions run inline in the writer, on larger pools they run
    // as background jobs — both must preserve isolation.
    let pool = WorkerPool::new(available_threads());
    // Every generation swap is 2×GEN_SIZE ops; threshold 3×GEN_SIZE forces
    // a compaction roughly every other swap.
    let db = Database::with_pool_and_store_config(
        pool,
        StoreConfig {
            compaction_threshold: 3 * GEN_SIZE as usize,
            ..StoreConfig::default()
        },
    );
    let mut db = db;
    let mut initial = scattered(2_000, 1_000_000, 9);
    initial.extend(generation(0));
    db.register("Objects", GridIndex::build(initial, 10).unwrap());
    let db = db; // shared immutably from here on

    let focal = far_focal();
    let spec = QuerySpec::TwoSelects {
        relation: "Objects".into(),
        query: TwoSelectsQuery::new(
            GEN_SIZE as usize,
            focal,
            GEN_SIZE as usize,
            Point::anonymous(200.5, 200.5),
        ),
    };

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for g in 1..=GENERATIONS {
                let mut ops: Vec<WriteOp> = (0..GEN_SIZE)
                    .map(|i| WriteOp::Remove((g - 1) * 100 + i))
                    .collect();
                ops.extend(generation(g).into_iter().map(WriteOp::Upsert));
                // One atomic batch: queries must never see a half-swapped
                // generation.
                db.ingest("Objects", &ops).unwrap();
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });

        let reader = scope.spawn(|| {
            let mut batches = 0u64;
            let mut last_gen = 0u64;
            while !done.load(Ordering::Acquire) || batches == 0 {
                // A 2-query batch pins ONE DbSnapshot: both queries must
                // observe the same generation.
                let results = db.execute_batch(&[spec.clone(), spec.clone()]);
                let g0 = observed_generation(results[0].as_ref().unwrap(), "batch query 0");
                let g1 = observed_generation(results[1].as_ref().unwrap(), "batch query 1");
                assert_eq!(
                    g0, g1,
                    "execute_batch must pin one snapshot for the whole batch"
                );
                assert!(
                    g0 >= last_gen,
                    "published versions must be observed monotonically"
                );
                last_gen = g0;
                // Single-query executes pin their own snapshot.
                let single = db.execute(&spec).unwrap();
                let gs = observed_generation(&single, "single query");
                assert!(gs >= last_gen);
                last_gen = gs;
                batches += 1;
            }
            batches
        });

        writer.join().expect("writer panicked");
        let batches = reader.join().expect("reader panicked");
        assert!(batches > 0, "the reader must have raced the writer");
    });

    // Quiesce deterministically: `wait_idle` blocks until every detached
    // rebuild job has published (no sleep/poll loop), then the remaining
    // delta drains synchronously.
    db.pool().wait_idle();
    while db.relation("Objects").unwrap().delta_len() > 0 {
        db.compact_now("Objects").unwrap();
    }
    let final_result = db.execute(&spec).unwrap();
    assert_eq!(
        observed_generation(&final_result, "after quiesce"),
        GENERATIONS
    );
    let metrics = db.store_metrics();
    assert!(
        metrics.compactions >= 1,
        "the workload must have forced at least one compaction (got {metrics})"
    );
    assert_eq!(
        db.relation("Objects").unwrap().num_points(),
        2_000 + GEN_SIZE as usize
    );
}

// ---------------------------------------------------------------------------
// Background rebuild shares the pool without blocking batches
// ---------------------------------------------------------------------------

#[test]
fn background_rebuild_runs_on_the_shared_pool_without_blocking_batches() {
    let pool = WorkerPool::new(2.max(available_threads().min(4)));
    let mut db = Database::with_pool_and_store_config(
        Arc::clone(&pool),
        StoreConfig {
            compaction_threshold: 40,
            ..StoreConfig::default()
        },
    );
    db.register(
        "Objects",
        GridIndex::build(scattered(20_000, 0, 13), 24).unwrap(),
    );
    db.register(
        "Sites",
        GridIndex::build(scattered(400, 50_000, 14), 6).unwrap(),
    );
    let db = db;

    let baseline: Vec<_> = object_queries()
        .iter()
        .map(|q| id_rows(&db.execute(q).unwrap()))
        .collect();
    assert!(baseline.iter().any(|rows| !rows.is_empty()));

    // One ingest batch crosses the threshold → a rebuild of the 20k-point
    // base is scheduled on the shared pool.
    db.ingest("Objects", &write_workload()).unwrap();

    // Immediately run query batches; they must complete correctly while the
    // rebuild is (potentially) in flight on a pool worker.
    let during: Vec<_> = db
        .execute_batch(&object_queries())
        .into_iter()
        .map(|r| id_rows(&r.unwrap()))
        .collect();

    // The rebuild publishes without any further nudging (on a 1-thread
    // pool it already ran inline during `ingest`): `wait_idle` awaits the
    // detached rebuild job deterministically — no sleep/poll loop.
    db.pool().wait_idle();
    assert_eq!(
        db.relation("Objects").unwrap().delta_len(),
        0,
        "the scheduled rebuild must have published by the time the pool is idle"
    );
    assert!(db.store_metrics().compactions >= 1);

    // Same logical content before and after the swap → same results.
    let after: Vec<_> = db
        .execute_batch(&object_queries())
        .into_iter()
        .map(|r| id_rows(&r.unwrap()))
        .collect();
    assert_eq!(during, after);
}

// ---------------------------------------------------------------------------
// Burst pruning: a write burst must not defeat MINDIST pruning
// ---------------------------------------------------------------------------

/// A spatially clustered burst of fresh inserts: `n` tie-free points packed
/// into a ~4×4 square around (60, 60) — the HTAP failure mode where a flood
/// of position updates lands in one hot region between compactions.
fn clustered_burst(n: usize, id_base: u64) -> Vec<WriteOp> {
    (0..n as u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            WriteOp::Upsert(Point::new(
                id_base + i,
                58.0 + (h % 40_000) as f64 * 0.0001,
                58.0 + ((h / 40_000) % 40_000) as f64 * 0.0001,
            ))
        })
        .collect()
}

/// The burst scenario's catalog: a quadtree-backed object relation (so the
/// post-compaction rebuild adapts its blocks to the cluster) plus two small
/// relations for the unchained join.
fn burst_db(overlay: OverlayConfig) -> Database {
    let mut db = Database::with_store_config(StoreConfig {
        compaction_threshold: usize::MAX,
        overlay,
        ..StoreConfig::default()
    });
    db.register(
        "Objects",
        QuadtreeIndex::build(scattered(4_000, 0, 3), 32).unwrap(),
    );
    db.register(
        "A",
        GridIndex::build(scattered(150, 200_000, 5), 4).unwrap(),
    );
    db.register(
        "C",
        GridIndex::build(scattered(150, 300_000, 6), 4).unwrap(),
    );
    db
}

/// The queries the burst regression measures: a kNN-select pair focused
/// inside the burst region and an unchained join over the bursting relation.
fn burst_queries() -> Vec<(QuerySpec, Strategy)> {
    vec![
        (
            QuerySpec::TwoSelects {
                relation: "Objects".into(),
                query: TwoSelectsQuery::new(
                    8,
                    Point::anonymous(60.0, 60.0),
                    8,
                    Point::anonymous(60.4, 60.4),
                ),
            },
            Strategy::TwoSelects(TwoSelectsStrategy::TwoKnnSelect),
        ),
        (
            QuerySpec::UnchainedJoins {
                a: "A".into(),
                b: "Objects".into(),
                c: "C".into(),
                query: UnchainedJoinQuery::new(2, 2),
            },
            Strategy::Unchained(UnchainedStrategy::BlockMarkingStartWithA),
        ),
    ]
}

/// Per-query `(rows, points_scanned, blocks_scanned)` under pinned
/// strategies, so overlay and compacted runs measure identical plans.
fn run_burst_queries(db: &Database) -> Vec<(Vec<Vec<u64>>, u64, u64)> {
    burst_queries()
        .iter()
        .map(|(spec, strategy)| {
            let result = db.execute_with(spec, *strategy).unwrap();
            let m = result.metrics();
            (id_rows(&result), m.points_scanned, m.blocks_scanned)
        })
        .collect()
}

#[test]
fn clustered_burst_keeps_block_pruning_within_a_constant_factor() {
    const BURST: usize = 10_000;
    let burst = clustered_burst(BURST, 500_000);

    // The partitioned (grid) overlay and the old single-block overlay
    // (fanout cap 1), fed the identical burst with no compaction.
    let grid_db = burst_db(OverlayConfig::default());
    grid_db.ingest("Objects", &burst).unwrap();
    let single_db = burst_db(OverlayConfig {
        max_cells_per_axis: 1,
        ..OverlayConfig::default()
    });
    single_db.ingest("Objects", &burst).unwrap();

    let grid_snap = grid_db.relation("Objects").unwrap();
    assert!(
        grid_snap.overlay_block_count() > 1,
        "the burst must partition into multiple overlay blocks"
    );
    grid_snap.check_overlay_invariants().unwrap();
    assert_eq!(
        single_db.relation("Objects").unwrap().overlay_block_count(),
        1,
        "fanout cap 1 must reproduce the single-block overlay"
    );

    let grid = run_burst_queries(&grid_db);
    let single = run_burst_queries(&single_db);

    // The compacted equivalent: fold the burst into a rebuilt base.
    grid_db
        .compact_now("Objects")
        .unwrap()
        .expect("delta is non-empty");
    assert_eq!(grid_db.relation("Objects").unwrap().delta_len(), 0);
    let compacted = run_burst_queries(&grid_db);

    for (i, ((g_rows, g_pts, g_blocks), ((s_rows, s_pts, _), (c_rows, c_pts, c_blocks)))) in grid
        .iter()
        .zip(single.iter().zip(compacted.iter()))
        .enumerate()
    {
        assert_eq!(
            g_rows, s_rows,
            "query {i}: overlay layout must not change results"
        );
        assert_eq!(
            g_rows, c_rows,
            "query {i}: compaction must not change results"
        );
        // The acceptance bound: with the partitioned overlay, block-visit
        // work during the un-compacted burst stays within a constant factor
        // of the freshly compacted index.
        assert!(
            *g_pts <= 3 * c_pts,
            "query {i}: grid overlay scanned {g_pts} points vs {c_pts} compacted (> 3x)"
        );
        assert!(
            *g_blocks <= 3 * c_blocks,
            "query {i}: grid overlay scanned {g_blocks} blocks vs {c_blocks} compacted (> 3x)"
        );
        // The regression this PR fixes: the single-block overlay funnels
        // the whole burst into every locality that touches the hot region.
        // The in-cluster kNN-select blows straight through the 3x bound
        // (~37x when this was written); the unchained join's outer points
        // are scattered, so its penalty is diluted but still ≥ 2x the
        // partitioned overlay's work.
        if i == 0 {
            assert!(
                *s_pts > 3 * c_pts,
                "query {i}: single-block overlay scanned only {s_pts} points vs {c_pts} \
                 compacted — the regression scenario no longer discriminates"
            );
        }
        assert!(
            *s_pts >= 2 * g_pts,
            "query {i}: single-block overlay ({s_pts} points) must cost ≥ 2x the \
             partitioned overlay ({g_pts} points)"
        );
    }
}

// ---------------------------------------------------------------------------
// Incremental overlay maintenance never drifts from a from-scratch rebuild
// ---------------------------------------------------------------------------

#[test]
fn incremental_overlay_maintenance_matches_from_scratch_rebuilds() {
    // Many small batches of mixed inserts / moves / removes, applied through
    // the incremental copy-on-write path. After every batch the published
    // snapshot must uphold the exact-count/tight-MBR overlay invariants
    // (counts or MBRs drifting from the true cell contents is precisely the
    // bug class this guards), and reads must equal a from-scratch database
    // over the same visible points.
    let mut db = Database::with_store_config(StoreConfig {
        compaction_threshold: usize::MAX,
        overlay: OverlayConfig {
            cell_target: 8,
            max_cells_per_axis: 16,
        },
        ..StoreConfig::default()
    });
    db.register(
        "Objects",
        GridIndex::build(scattered(600, 0, 21), 6).unwrap(),
    );

    let spec = QuerySpec::TwoSelects {
        relation: "Objects".into(),
        query: TwoSelectsQuery::new(
            5,
            Point::anonymous(40.0, 40.0),
            25,
            Point::anonymous(70.0, 30.0),
        ),
    };
    for round in 0u64..12 {
        let mut ops = Vec::new();
        // Fresh clustered inserts drifting across the space round by round.
        for (i, p) in scattered(40, 10_000 + round * 1_000, round + 1)
            .into_iter()
            .enumerate()
        {
            ops.push(WriteOp::Upsert(Point::new(
                p.id,
                p.x * 0.3 + round as f64 * 7.0,
                p.y * 0.3 + round as f64 * 5.0,
            )));
            if i % 4 == 0 {
                // Move a point inserted in an earlier round (if present).
                ops.push(WriteOp::Upsert(Point::new(
                    10_000 + round.saturating_sub(1) * 1_000 + i as u64,
                    p.y * 0.3,
                    p.x * 0.3,
                )));
            }
            if i % 5 == 0 {
                ops.push(WriteOp::Remove(
                    10_000 + round.saturating_sub(1) * 1_000 + i as u64,
                ));
                ops.push(WriteOp::Remove(i as u64 * 11)); // base tombstones
            }
        }
        db.ingest("Objects", &ops).unwrap();

        let snap = db.relation("Objects").unwrap();
        snap.check_overlay_invariants()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));

        // A from-scratch database over the merged visible points must agree.
        let mut fresh = Database::new();
        fresh.register(
            "Objects",
            GridIndex::build_with_bounds(snap.merged_points(), snap.bounds(), 6).unwrap(),
        );
        assert_eq!(
            id_rows(&db.execute(&spec).unwrap()),
            id_rows(&fresh.execute(&spec).unwrap()),
            "round {round}: incremental overlay reads drifted from a rebuild"
        );
    }
    assert!(
        db.relation("Objects").unwrap().overlay_block_count() > 1,
        "the workload must have exercised a partitioned overlay"
    );
}
