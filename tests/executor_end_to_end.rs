//! End-to-end tests of the catalog / optimizer / executor layer on realistic
//! (BerlinMOD-like and clustered) workloads, plus the parallel join operator.

use two_knn::core::join::{knn_join, knn_join_parallel};
use two_knn::core::joins2::ChainedJoinQuery;
use two_knn::core::joins2::UnchainedJoinQuery;
use two_knn::core::output::pair_id_set;
use two_knn::core::plan::{
    ChainedStrategy, Database, QueryResult, QuerySpec, SelectInnerStrategy, Strategy,
    TwoSelectsStrategy, UnchainedStrategy,
};
use two_knn::core::select_join::SelectInnerJoinQuery;
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::datagen::{berlinmod, clustered, BerlinModConfig, ClusterConfig};
use two_knn::{GridIndex, Point};

fn build_db() -> Database {
    let mut db = Database::new();
    db.register(
        "Restaurants",
        GridIndex::build_with_target_occupancy(
            berlinmod(&BerlinModConfig::with_points(6_000, 71)),
            64,
        )
        .unwrap(),
    );
    db.register(
        "Hotels",
        GridIndex::build_with_target_occupancy(
            berlinmod(&BerlinModConfig::with_points(4_000, 72)),
            64,
        )
        .unwrap(),
    );
    db.register(
        "Attractions",
        GridIndex::build_with_target_occupancy(
            clustered(&ClusterConfig {
                num_clusters: 2,
                points_per_cluster: 1_500,
                cluster_radius: 2_000.0,
                extent: two_knn::datagen::default_extent(),
                seed: 73,
            }),
            64,
        )
        .unwrap(),
    );
    db
}

fn center() -> Point {
    Point::anonymous(50_000.0, 50_000.0)
}

#[test]
fn optimizer_prefers_block_marking_for_large_outer_and_counting_for_small() {
    let db = build_db();
    // "Restaurants" is only 6k points, below the default Counting limit.
    let spec = QuerySpec::SelectInnerOfJoin {
        outer: "Restaurants".into(),
        inner: "Hotels".into(),
        query: SelectInnerJoinQuery::new(2, 4, center()),
    };
    assert_eq!(
        db.plan(&spec).unwrap(),
        Strategy::SelectInner(SelectInnerStrategy::Counting)
    );

    // With a stricter optimizer the same query plans to Block-Marking.
    let strict = Database::with_optimizer(two_knn::core::plan::Optimizer {
        counting_outer_limit: 1_000,
        counting_density_limit: 0.5,
        ..two_knn::core::plan::Optimizer::default()
    });
    // The strict catalog needs its own relations.
    let mut strict = strict;
    strict.register(
        "Restaurants",
        GridIndex::build_with_target_occupancy(
            berlinmod(&BerlinModConfig::with_points(6_000, 71)),
            64,
        )
        .unwrap(),
    );
    strict.register(
        "Hotels",
        GridIndex::build_with_target_occupancy(
            berlinmod(&BerlinModConfig::with_points(4_000, 72)),
            64,
        )
        .unwrap(),
    );
    assert_eq!(
        strict.plan(&spec).unwrap(),
        Strategy::SelectInner(SelectInnerStrategy::BlockMarking)
    );
}

#[test]
fn optimizer_starts_unchained_joins_with_the_clustered_relation() {
    let db = build_db();
    let spec = QuerySpec::UnchainedJoins {
        a: "Attractions".into(),
        b: "Hotels".into(),
        c: "Restaurants".into(),
        query: UnchainedJoinQuery::new(2, 2),
    };
    assert_eq!(
        db.plan(&spec).unwrap(),
        Strategy::Unchained(UnchainedStrategy::BlockMarkingStartWithA)
    );
    // Swapping the roles swaps the decision.
    let swapped = QuerySpec::UnchainedJoins {
        a: "Restaurants".into(),
        b: "Hotels".into(),
        c: "Attractions".into(),
        query: UnchainedJoinQuery::new(2, 2),
    };
    assert_eq!(
        db.plan(&swapped).unwrap(),
        Strategy::Unchained(UnchainedStrategy::BlockMarkingStartWithC)
    );
}

#[test]
fn every_query_shape_executes_and_strategies_agree_on_results() {
    let db = build_db();

    // Select-inner-of-join: optimizer choice vs conceptual reference.
    let spec = QuerySpec::SelectInnerOfJoin {
        outer: "Restaurants".into(),
        inner: "Hotels".into(),
        query: SelectInnerJoinQuery::new(2, 6, center()),
    };
    let auto = db.execute(&spec).unwrap();
    let reference = db
        .execute_with(
            &spec,
            Strategy::SelectInner(SelectInnerStrategy::Conceptual),
        )
        .unwrap();
    assert_eq!(auto.num_rows(), reference.num_rows());

    // Chained joins: cached nested join vs right-deep reference.
    let chained = QuerySpec::ChainedJoins {
        a: "Attractions".into(),
        b: "Hotels".into(),
        c: "Restaurants".into(),
        query: ChainedJoinQuery::new(2, 2),
    };
    let fast = db.execute(&chained).unwrap();
    assert_eq!(
        fast.strategy(),
        Strategy::Chained(ChainedStrategy::NestedJoinCached)
    );
    let slow = db
        .execute_with(&chained, Strategy::Chained(ChainedStrategy::RightDeep))
        .unwrap();
    assert_eq!(fast.num_rows(), slow.num_rows());
    assert!(fast.metrics().neighborhoods_computed <= slow.metrics().neighborhoods_computed);

    // Two selects: the auto strategy is the 2-kNN-select algorithm.
    let selects = QuerySpec::TwoSelects {
        relation: "Hotels".into(),
        query: TwoSelectsQuery::new(8, center(), 512, Point::anonymous(52_000.0, 51_000.0)),
    };
    let fast = db.execute(&selects).unwrap();
    assert_eq!(
        fast.strategy(),
        Strategy::TwoSelects(TwoSelectsStrategy::TwoKnnSelect)
    );
    let slow = db
        .execute_with(
            &selects,
            Strategy::TwoSelects(TwoSelectsStrategy::Conceptual),
        )
        .unwrap();
    match (fast, slow) {
        (QueryResult::Points { output: f, .. }, QueryResult::Points { output: s, .. }) => {
            assert_eq!(
                two_knn::core::output::point_id_set(&f.rows),
                two_knn::core::output::point_id_set(&s.rows)
            );
        }
        _ => panic!("expected point results"),
    }
}

#[test]
fn parallel_knn_join_matches_sequential_on_city_data() {
    let outer = GridIndex::build_with_target_occupancy(
        berlinmod(&BerlinModConfig::with_points(3_000, 81)),
        64,
    )
    .unwrap();
    let inner = GridIndex::build_with_target_occupancy(
        berlinmod(&BerlinModConfig::with_points(5_000, 82)),
        64,
    )
    .unwrap();
    let seq = knn_join(&outer, &inner, 3);
    for threads in [2, 4, 8] {
        let par = knn_join_parallel(&outer, &inner, 3, threads);
        assert_eq!(pair_id_set(&seq.rows), pair_id_set(&par.rows));
    }
}
