//! Integration tests reproducing the paper's *conceptual* figures: each test
//! builds the exact (or an equivalent) point layout of a figure and asserts
//! the result sets stated in the figure captions.

use std::collections::BTreeSet;

use two_knn::core::joins2::{
    chained_join_intersection, chained_nested, chained_nested_cached, chained_right_deep,
    unchained_block_marking, unchained_conceptual, unchained_wrong_sequential, ChainedJoinQuery,
    UnchainedJoinQuery,
};
use two_knn::core::output::{pair_id_set, point_id_set, triplet_id_set};
use two_knn::core::select_join::{
    block_marking, conceptual, counting, invalid_inner_pushdown, select_on_outer_after_join,
    select_on_outer_pushdown, SelectInnerJoinQuery, SelectOuterJoinQuery,
};
use two_knn::core::selects2::{
    two_knn_select, two_selects_conceptual, two_selects_wrong_sequential, TwoSelectsQuery,
};
use two_knn::{GridIndex, Point};

fn grid(points: Vec<Point>) -> GridIndex {
    GridIndex::build(points, 4).expect("non-empty test relation")
}

/// Figures 1 and 2: a kNN-select on the inner relation of a kNN-join, k = 2
/// in both predicates. Mechanics m1..m4, hotels h1..h3, one shopping center.
///
/// The caption of Figure 1 (the correct QEP) lists the pairs
/// (m1,h1), (m2,h1), (m2,h2), (m3,h2), (m4,h1); the caption of Figure 2 (the
/// invalid pushdown) lists every mechanic paired with h1 or h2.
#[test]
fn figures_1_and_2_select_inner_of_join() {
    // Shopping center at the origin; h1 and h2 are its two nearest hotels.
    let shopping_center = Point::anonymous(0.0, 0.0);
    let hotels = grid(vec![
        Point::new(1, 1.0, 0.0),  // h1
        Point::new(2, 0.0, 1.0),  // h2
        Point::new(3, 10.0, 5.0), // h3 (far from the shopping center)
    ]);
    let mechanics = grid(vec![
        Point::new(1, 6.0, 1.0), // m1: 2-NN hotels = {h1, h3}
        Point::new(2, 0.5, 0.5), // m2: 2-NN hotels = {h1, h2}
        Point::new(3, 4.0, 7.0), // m3: 2-NN hotels = {h2, h3}
        Point::new(4, 7.0, 0.0), // m4: 2-NN hotels = {h1, h3}
    ]);
    let query = SelectInnerJoinQuery::new(2, 2, shopping_center);

    let expected_correct: BTreeSet<(u64, u64)> = [(1, 1), (2, 1), (2, 2), (3, 2), (4, 1)]
        .into_iter()
        .collect();
    let expected_wrong: BTreeSet<(u64, u64)> = [
        (1, 1),
        (1, 2),
        (2, 1),
        (2, 2),
        (3, 1),
        (3, 2),
        (4, 1),
        (4, 2),
    ]
    .into_iter()
    .collect();

    // Figure 1: the conceptually correct QEP and both efficient algorithms.
    assert_eq!(
        pair_id_set(&conceptual(&mechanics, &hotels, &query).rows),
        expected_correct
    );
    assert_eq!(
        pair_id_set(&counting(&mechanics, &hotels, &query).rows),
        expected_correct
    );
    assert_eq!(
        pair_id_set(&block_marking(&mechanics, &hotels, &query).rows),
        expected_correct
    );

    // Figure 2: the invalid pushdown produces the wrong, larger result.
    assert_eq!(
        pair_id_set(&invalid_inner_pushdown(&mechanics, &hotels, &query).rows),
        expected_wrong
    );
}

/// Figure 3: a kNN-select on the *outer* relation of a kNN-join. Pushing the
/// selection below the join is valid — both QEPs give the same pairs.
#[test]
fn figure_3_select_outer_of_join_pushdown_is_valid() {
    let shopping_center = Point::anonymous(0.0, 0.0);
    let mechanics = grid(vec![
        Point::new(1, 1.0, 0.5),
        Point::new(2, 0.5, 1.5),
        Point::new(3, 6.0, 6.0),
        Point::new(4, 8.0, 2.0),
    ]);
    let hotels = grid(vec![
        Point::new(1, 1.0, 1.0),
        Point::new(2, 2.0, 0.0),
        Point::new(3, 7.0, 5.0),
        Point::new(4, 9.0, 1.0),
    ]);
    let query = SelectOuterJoinQuery::new(2, 2, shopping_center);
    let pushed = select_on_outer_pushdown(&mechanics, &hotels, &query);
    let after = select_on_outer_after_join(&mechanics, &hotels, &query);
    assert_eq!(pair_id_set(&pushed.rows), pair_id_set(&after.rows));
    // The selection keeps mechanics 1 and 2 (closest to the shopping center),
    // so every output pair's outer component is one of them.
    assert!(pushed.rows.iter().all(|p| p.left.id == 1 || p.left.id == 2));
    assert_eq!(pushed.len(), 4);
}

/// Figures 8, 9 and 10: two unchained kNN-joins, k = 2 in both. Evaluating
/// either join first gives the wrong triplets; the correct QEP evaluates both
/// joins independently and intersects on B, keeping only b2.
#[test]
fn figures_8_9_10_unchained_joins() {
    let a = grid(vec![Point::new(1, 1.0, 1.0), Point::new(2, 2.0, -1.0)]);
    let b = grid(vec![
        Point::new(1, 0.0, 0.0),  // b1: neighbor of A only
        Point::new(2, 5.0, 0.0),  // b2: neighbor of both A and C
        Point::new(3, 10.0, 0.0), // b3: neighbor of C only
    ]);
    let c = grid(vec![Point::new(1, 8.0, 1.0), Point::new(2, 9.0, -1.0)]);
    let query = UnchainedJoinQuery::new(2, 2);

    // Figure 10: the correct result keeps only triplets through b2.
    let expected: BTreeSet<(u64, u64, u64)> = [(1, 2, 1), (1, 2, 2), (2, 2, 1), (2, 2, 2)]
        .into_iter()
        .collect();
    assert_eq!(
        triplet_id_set(&unchained_conceptual(&a, &b, &c, &query).rows),
        expected
    );
    assert_eq!(
        triplet_id_set(&unchained_block_marking(&a, &b, &c, &query).rows),
        expected
    );

    // Figure 8: (A ⋈ B) evaluated first filters b3 out — every triplet goes
    // through b1 or b2 and the result has 8 triplets, not 4.
    let fig8 = triplet_id_set(&unchained_wrong_sequential(&a, &b, &c, &query, true).rows);
    assert_eq!(fig8.len(), 8);
    assert!(fig8.iter().all(|(_, b_id, _)| *b_id == 1 || *b_id == 2));
    assert_ne!(fig8, expected);

    // Figure 9: (C ⋈ B) evaluated first filters b1 out.
    let fig9 = triplet_id_set(&unchained_wrong_sequential(&a, &b, &c, &query, false).rows);
    assert_eq!(fig9.len(), 8);
    assert!(fig9.iter().all(|(_, b_id, _)| *b_id == 2 || *b_id == 3));
    assert_ne!(fig9, expected);
    assert_ne!(fig8, fig9);
}

/// Figure 13: two chained kNN-joins, k = 2 in both. All three QEPs (and the
/// cached variant of QEP3) produce the same eight triplets listed in the
/// caption; b1 never appears because it is not a neighbor of any a.
#[test]
fn figure_13_chained_joins() {
    let a = grid(vec![Point::new(1, 1.5, 0.5), Point::new(2, 2.0, -0.5)]);
    let b = grid(vec![
        Point::new(1, 0.0, 10.0), // b1: far from A, never joined
        Point::new(2, 1.0, 0.0),  // b2
        Point::new(3, 3.0, 0.0),  // b3
    ]);
    let c = grid(vec![
        Point::new(1, 0.5, 0.0),   // c1: near b2
        Point::new(2, 2.0, 0.0),   // c2: between b2 and b3
        Point::new(3, 10.0, 10.0), // c3: far from everything
        Point::new(4, 3.5, 0.0),   // c4: near b3
    ]);
    let query = ChainedJoinQuery::new(2, 2);

    let expected: BTreeSet<(u64, u64, u64)> = [
        (1, 2, 1),
        (1, 2, 2),
        (2, 2, 1),
        (2, 2, 2),
        (1, 3, 2),
        (1, 3, 4),
        (2, 3, 2),
        (2, 3, 4),
    ]
    .into_iter()
    .collect();

    assert_eq!(
        triplet_id_set(&chained_right_deep(&a, &b, &c, &query).rows),
        expected
    );
    assert_eq!(
        triplet_id_set(&chained_join_intersection(&a, &b, &c, &query).rows),
        expected
    );
    assert_eq!(
        triplet_id_set(&chained_nested(&a, &b, &c, &query).rows),
        expected
    );
    assert_eq!(
        triplet_id_set(&chained_nested_cached(&a, &b, &c, &query).rows),
        expected
    );
}

/// Figures 14, 15 and 16: two kNN-selects, k = 5 each. The sequential plans
/// return five houses each (the survivors of whichever select ran first); the
/// correct plan returns only the two houses near both focal points.
#[test]
fn figures_14_15_16_two_selects() {
    let work = Point::anonymous(0.0, 0.0);
    let school = Point::anonymous(10.0, 0.0);
    let houses = grid(vec![
        Point::new(1, 5.0, 0.5),    // x: near both
        Point::new(2, 5.0, -0.5),   // y: near both
        Point::new(3, 1.0, 0.0),    // l: near work
        Point::new(4, 0.0, 1.0),    // m: near work
        Point::new(5, 1.0, 1.0),    // z: near work
        Point::new(6, 9.0, 0.0),    // n: near school
        Point::new(7, 10.0, 1.0),   // p: near school
        Point::new(8, 9.0, 1.0),    // o: near school
        Point::new(9, 20.0, 20.0),  // distant filler
        Point::new(10, -15.0, 8.0), // distant filler
    ]);
    let query = TwoSelectsQuery::new(5, work, 5, school);

    // Figure 16: the correct QEP returns {x, y}.
    let expected_correct: BTreeSet<u64> = [1, 2].into_iter().collect();
    assert_eq!(
        point_id_set(&two_selects_conceptual(&houses, &query).rows),
        expected_correct
    );
    assert_eq!(
        point_id_set(&two_knn_select(&houses, &query).rows),
        expected_correct
    );

    // Figure 14: work-select first → {x, y, l, m, z}.
    let fig14 = point_id_set(&two_selects_wrong_sequential(&houses, &query, true).rows);
    assert_eq!(fig14, [1, 2, 3, 4, 5].into_iter().collect::<BTreeSet<_>>());

    // Figure 15: school-select first → {x, y, n, p, o}.
    let fig15 = point_id_set(&two_selects_wrong_sequential(&houses, &query, false).rows);
    assert_eq!(fig15, [1, 2, 6, 7, 8].into_iter().collect::<BTreeSet<_>>());

    assert_ne!(fig14, expected_correct);
    assert_ne!(fig15, expected_correct);
    assert_ne!(fig14, fig15);
}
