//! Integration tests of the continuous-query subsystem: standing queries
//! over every supported shape, maintained incrementally across randomized
//! mixed ingest batches, must stay delta-equivalent to from-scratch
//! execution at every published version — across all three index families.
//! Plus the guard-tightness regression: a write burst far from every focal
//! point must trigger **zero** re-evaluations.

use std::collections::BTreeMap;

use two_knn::core::exec::available_threads;
use two_knn::core::joins2::{ChainedJoinQuery, UnchainedJoinQuery};
use two_knn::core::plan::{Database, QuerySpec};
use two_knn::core::select_join::{SelectInnerJoinQuery, SelectOuterJoinQuery};
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::core::store::{StoreConfig, WriteOp};
use two_knn::core::{QueryError, ResultDelta, SubscriptionId, WorkerPool};
use two_knn::{GridIndex, Point, QuadtreeIndex, StrRTree};

/// Irregular, tie-free point cloud over roughly [0, 110]².
fn scattered(n: usize, id_base: u64, seed: u64) -> Vec<Point> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
            let x = (h % 100_000) as f64 * 0.0011;
            let y = ((h / 100_000) % 100_000) as f64 * 0.0011;
            Point::new(id_base + i, x, y)
        })
        .collect()
}

fn id_rows(result: &two_knn::core::plan::QueryResult) -> Vec<Vec<u64>> {
    let mut ids: Vec<Vec<u64>> = result.rows().iter().map(|r| r.ids()).collect();
    ids.sort_unstable();
    ids
}

/// The standing-query shapes under maintenance: select-in-join (both
/// directions), unchained join, chained join, and two selects — every
/// relation role the guard derivation distinguishes. "Objects" is the
/// relation the write stream mutates.
fn standing_queries() -> Vec<QuerySpec> {
    let focal = Point::anonymous(55.0, 55.0);
    vec![
        QuerySpec::TwoSelects {
            relation: "Objects".into(),
            query: TwoSelectsQuery::new(6, focal, 40, Point::anonymous(40.0, 60.0)),
        },
        QuerySpec::SelectInnerOfJoin {
            outer: "Sites".into(),
            inner: "Objects".into(),
            query: SelectInnerJoinQuery::new(2, 3, focal),
        },
        QuerySpec::SelectOuterOfJoin {
            outer: "Objects".into(),
            inner: "Sites".into(),
            query: SelectOuterJoinQuery::new(2, 4, focal),
        },
        QuerySpec::UnchainedJoins {
            a: "A".into(),
            b: "Objects".into(),
            c: "C".into(),
            query: UnchainedJoinQuery::new(2, 2),
        },
        QuerySpec::ChainedJoins {
            a: "A".into(),
            b: "Objects".into(),
            c: "C".into(),
            query: ChainedJoinQuery::new(2, 2),
        },
    ]
}

/// One randomized mixed batch: fresh inserts, moves of base objects, and
/// removes of base + previously inserted ids. Deterministic per round.
fn mixed_batch(round: u64) -> Vec<WriteOp> {
    let mut ops = Vec::new();
    for p in scattered(8, 50_000 + round * 100, 1_000 + round * 7) {
        ops.push(WriteOp::Upsert(p));
    }
    for (i, p) in scattered(6, 0, 2_000 + round * 13).into_iter().enumerate() {
        // Moves: reuse existing base ids with fresh positions.
        ops.push(WriteOp::Upsert(Point::new(
            (round * 37 + i as u64 * 13) % 600,
            p.x,
            p.y,
        )));
    }
    for i in 0..4u64 {
        ops.push(WriteOp::Remove((round * 91 + i * 29) % 600));
    }
    if round > 1 {
        // Remove one insert from the previous round.
        ops.push(WriteOp::Remove(50_000 + (round - 1) * 100));
    }
    ops
}

/// Folds a subscription's polled deltas into its accumulated result,
/// asserting the deltas are well-formed (no double-adds, no phantom
/// removes) and version-monotone.
fn apply_deltas(acc: &mut BTreeMap<Vec<u64>, ()>, last_version: &mut u64, deltas: &[ResultDelta]) {
    for delta in deltas {
        assert!(
            !delta.is_empty(),
            "the maintainer must not emit empty deltas"
        );
        assert!(
            delta.version >= *last_version,
            "delta versions must be monotone: {} after {last_version}",
            delta.version
        );
        *last_version = delta.version;
        for row in &delta.removed {
            assert!(
                acc.remove(&row.ids()).is_some(),
                "removed row {:?} was not in the accumulated result",
                row.ids()
            );
        }
        for row in &delta.added {
            assert!(
                acc.insert(row.ids(), ()).is_none(),
                "added row {:?} was already in the accumulated result",
                row.ids()
            );
        }
    }
}

fn catalog(db: &mut Database, family: &str) {
    let objects = scattered(600, 0, 3);
    match family {
        "grid" => db.register("Objects", GridIndex::build(objects, 8).unwrap()),
        "quadtree" => db.register("Objects", QuadtreeIndex::build(objects, 32).unwrap()),
        _ => db.register("Objects", StrRTree::build(objects, 32).unwrap()),
    };
    db.register(
        "Sites",
        GridIndex::build(scattered(200, 50_000_000, 4), 5).unwrap(),
    );
    db.register(
        "A",
        GridIndex::build(scattered(120, 60_000_000, 5), 4).unwrap(),
    );
    db.register(
        "C",
        GridIndex::build(scattered(120, 70_000_000, 6), 4).unwrap(),
    );
}

#[test]
fn accumulated_deltas_reconstruct_from_scratch_results_at_every_version() {
    for family in ["grid", "quadtree", "rtree"] {
        // A small compaction threshold so background rebuilds interleave
        // with maintenance mid-stream; the pool honors TWOKNN_THREADS (the
        // CI matrix pins 1 and 2).
        let pool = WorkerPool::new(available_threads());
        let mut db = Database::with_pool_and_store_config(
            pool,
            StoreConfig {
                compaction_threshold: 48,
                ..StoreConfig::default()
            },
        );
        catalog(&mut db, family);
        let db = db;

        let specs = standing_queries();
        let mut subs: Vec<SubscriptionId> = Vec::new();
        let mut accs: Vec<BTreeMap<Vec<u64>, ()>> = Vec::new();
        let mut versions: Vec<u64> = Vec::new();
        for spec in &specs {
            let id = db.subscribe(spec, None).unwrap();
            subs.push(id);
            accs.push(BTreeMap::new());
            versions.push(0);
        }
        assert_eq!(db.subscription_count(), specs.len());

        for round in 1..=14u64 {
            db.ingest("Objects", &mixed_batch(round)).unwrap();
            // Deterministically await every maintenance re-evaluation and
            // background compaction scheduled by this batch.
            db.pool().wait_idle();

            for (i, spec) in specs.iter().enumerate() {
                let deltas = db.poll(subs[i]).unwrap();
                apply_deltas(&mut accs[i], &mut versions[i], &deltas);
                let expected = id_rows(&db.execute(spec).unwrap());
                let accumulated: Vec<Vec<u64>> = accs[i].keys().cloned().collect();
                assert_eq!(
                    accumulated, expected,
                    "{family}: round {round}, standing query {i} ({spec:?}) drifted \
                     from the from-scratch result"
                );
                // The engine's own maintained rows agree with the deltas.
                let (rows, _) = db.subscription_result(subs[i]).unwrap();
                let mut maintained: Vec<Vec<u64>> = rows.iter().map(|r| r.ids()).collect();
                maintained.sort_unstable();
                assert_eq!(maintained, accumulated, "{family}: round {round}");
            }
        }

        let metrics = db.store_metrics();
        assert!(
            metrics.compactions >= 1,
            "{family}: the stream must have forced background compactions ({metrics})"
        );
        assert!(
            metrics.cq_reevals >= 1,
            "{family}: writes at the focal region must have triggered re-evaluations"
        );
    }
}

#[test]
fn subscription_lifecycle_and_errors() {
    let mut db = Database::new();
    catalog(&mut db, "grid");
    let db = db;
    let spec = &standing_queries()[0];

    let id = db.subscribe(spec, None).unwrap();
    // The initial evaluation arrives as the first delta: all rows added.
    let deltas = db.poll(id).unwrap();
    assert_eq!(deltas.len(), 1);
    assert!(deltas[0].removed.is_empty());
    assert_eq!(
        deltas[0].added.len(),
        db.execute(spec).unwrap().num_rows(),
        "initial delta must carry the full first evaluation"
    );
    // Nothing changed since: poll drains to empty.
    assert!(db.poll(id).unwrap().is_empty());

    // An explicit strategy is honored; a mismatched one is rejected.
    let pinned = db
        .subscribe(
            spec,
            Some(two_knn::core::plan::Strategy::TwoSelects(
                two_knn::core::plan::TwoSelectsStrategy::Conceptual,
            )),
        )
        .unwrap();
    assert_ne!(pinned, id);
    assert!(matches!(
        db.subscribe(
            spec,
            Some(two_knn::core::plan::Strategy::Chained(
                two_knn::core::plan::ChainedStrategy::RightDeep
            )),
        ),
        Err(QueryError::UnsupportedPlanShape { .. })
    ));

    assert_eq!(db.subscription_count(), 2);
    db.unsubscribe(id).unwrap();
    assert_eq!(db.subscription_count(), 1);
    assert!(matches!(
        db.poll(id),
        Err(QueryError::UnknownSubscription { .. })
    ));
    assert!(matches!(
        db.unsubscribe(id),
        Err(QueryError::UnknownSubscription { .. })
    ));

    // Unknown relations surface at subscribe time.
    let missing = QuerySpec::TwoSelects {
        relation: "Nope".into(),
        query: TwoSelectsQuery::new(1, Point::anonymous(0.0, 0.0), 1, Point::anonymous(1.0, 1.0)),
    };
    assert!(matches!(
        db.subscribe(&missing, None),
        Err(QueryError::UnknownRelation { .. })
    ));
}

/// A wholesale relation replacement — including deregister-then-register,
/// which has no per-write positions to probe — must re-evaluate every
/// standing query on that name rather than leaving it stale behind guards
/// derived from the old data.
#[test]
fn reregistration_reevaluates_standing_queries() {
    let mut db = Database::new();
    catalog(&mut db, "grid");
    let spec = standing_queries()[0].clone(); // TwoSelects on Objects
    let sub = db.subscribe(&spec, None).unwrap();
    db.poll(sub).unwrap(); // drain the initial delta

    // Replace the relation with entirely fresh ids, via the deregister +
    // register path (register returns None — the gate must not be
    // `replaced.is_some()`).
    assert!(db.deregister("Objects").is_some());
    assert!(db
        .register(
            "Objects",
            GridIndex::build(scattered(600, 1_000_000, 9), 8).unwrap()
        )
        .is_none());
    db.pool().wait_idle();

    let deltas = db.poll(sub).unwrap();
    assert!(
        !deltas.is_empty(),
        "the replacement changed every row id — a delta must be emitted"
    );
    let (rows, _) = db.subscription_result(sub).unwrap();
    let mut maintained: Vec<Vec<u64>> = rows.iter().map(|r| r.ids()).collect();
    maintained.sort_unstable();
    assert_eq!(
        maintained,
        id_rows(&db.execute(&spec).unwrap()),
        "the standing query must track the re-registered relation"
    );
    assert!(maintained.iter().all(|ids| ids[0] >= 1_000_000));
}

/// Guard-tightness regression (satellite): a write burst far from every
/// focal point must be skipped by **every** subscription — `cq_skips`
/// advances by the full subscription count per batch, `cq_reevals` not at
/// all — pinning that guards stay tight under the partitioned overlay grid.
#[test]
fn far_write_burst_triggers_zero_reevaluations() {
    let pool = WorkerPool::new(available_threads());
    let mut db = Database::with_pool_and_store_config(
        pool,
        StoreConfig {
            // Compactions stay out of the picture: the burst lives in the
            // overlay grid, where PR 4's tight per-cell MBRs must keep the
            // guards' circle/expansion bounds effective.
            compaction_threshold: usize::MAX,
            ..StoreConfig::default()
        },
    );
    catalog(&mut db, "grid");
    let db = db;

    // Focal-bounded standing queries only (selects and a select-on-outer):
    // join shapes whose mutable relation is an outer side are legitimately
    // unbounded — any insert there creates rows.
    let mut specs = Vec::new();
    for i in 0..6u64 {
        let f = Point::anonymous(20.0 + i as f64 * 12.0, 25.0 + i as f64 * 11.0);
        specs.push(QuerySpec::TwoSelects {
            relation: "Objects".into(),
            query: TwoSelectsQuery::new(4, f, 16, Point::anonymous(f.y, f.x)),
        });
    }
    specs.push(QuerySpec::SelectOuterOfJoin {
        outer: "Objects".into(),
        inner: "Sites".into(),
        query: SelectOuterJoinQuery::new(2, 4, Point::anonymous(55.0, 55.0)),
    });
    let subs: Vec<SubscriptionId> = specs
        .iter()
        .map(|spec| db.subscribe(spec, None).unwrap())
        .collect();
    db.pool().wait_idle();
    for id in &subs {
        db.poll(*id).unwrap(); // drain the initial deltas
    }
    let before = db.store_metrics();

    // Three bursts far outside every guard circle: fresh inserts, moves
    // within the far region, and removes of far points.
    for round in 0..3u64 {
        let mut ops: Vec<WriteOp> = (0..200u64)
            .map(|i| {
                let h = (i + round * 1_000).wrapping_mul(0x9E3779B97F4A7C15);
                WriteOp::Upsert(Point::new(
                    900_000 + round * 1_000 + i,
                    700.0 + (h % 1_000) as f64 * 0.05,
                    700.0 + ((h / 1_000) % 1_000) as f64 * 0.05,
                ))
            })
            .collect();
        if round > 0 {
            ops.push(WriteOp::Remove(900_000 + (round - 1) * 1_000));
        }
        db.ingest("Objects", &ops).unwrap();
    }
    db.pool().wait_idle();

    let after = db.store_metrics();
    assert_eq!(
        after.cq_reevals - before.cq_reevals,
        0,
        "a far burst must not re-evaluate any standing query"
    );
    assert_eq!(
        after.cq_skips - before.cq_skips,
        3 * subs.len() as u64,
        "every batch must be guard-pruned for every subscription"
    );
    for id in &subs {
        assert!(
            db.poll(*id).unwrap().is_empty(),
            "no deltas may be emitted for unaffected subscriptions"
        );
    }

    // Sanity: a write **inside** a guard circle does re-evaluate — the
    // zero above is tightness, not a dead counter.
    db.ingest(
        "Objects",
        &[WriteOp::Upsert(Point::new(950_000, 20.0, 25.0))],
    )
    .unwrap();
    db.pool().wait_idle();
    let hit = db.store_metrics();
    assert!(
        hit.cq_reevals > after.cq_reevals,
        "a focal-region write must trigger at least one re-evaluation"
    );
}
