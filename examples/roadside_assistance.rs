//! The paper's motivating scenario (Section 1): a car breaks down, the driver
//! needs a mechanic shop and a hotel close to each other, and the hotel must
//! also be close to a specific shopping center.
//!
//! Query: "From the list of mechanic shops and the two closest hotels to each
//! mechanic shop, report the (mechanic shop, hotel) pairs, where the hotel is
//! amongst the two closest neighbors of the shopping center."
//!
//! This example shows (a) that pushing the kNN-select below the join's inner
//! relation silently changes the answer, and (b) how much work the Counting
//! and Block-Marking algorithms save relative to the conceptually correct
//! plan.
//!
//! Run with: `cargo run --release --example roadside_assistance`

use two_knn::core::output::pair_id_set;
use two_knn::core::select_join::{
    block_marking, conceptual, counting, invalid_inner_pushdown, SelectInnerJoinQuery,
};
use two_knn::datagen::{berlinmod, BerlinModConfig};
use two_knn::{GridIndex, Point, SpatialIndex};

fn main() {
    // Mechanics are sparse; hotels are denser and skewed towards the center.
    let mechanics = GridIndex::build_with_target_occupancy(
        berlinmod(&BerlinModConfig::with_points(30_000, 11)),
        64,
    )
    .unwrap();
    let hotels = GridIndex::build_with_target_occupancy(
        berlinmod(&BerlinModConfig::with_points(8_000, 12)),
        64,
    )
    .unwrap();
    let shopping_center = Point::anonymous(52_000.0, 49_000.0);

    println!(
        "mechanics: {} points, hotels: {} points, shopping center at ({:.0}, {:.0})\n",
        mechanics.num_points(),
        hotels.num_points(),
        shopping_center.x,
        shopping_center.y
    );

    let query = SelectInnerJoinQuery::new(2, 2, shopping_center);

    // The three correct plans.
    let correct = conceptual(&mechanics, &hotels, &query);
    let fast_counting = counting(&mechanics, &hotels, &query);
    let fast_marking = block_marking(&mechanics, &hotels, &query);

    // The classical (and wrong) relational optimization.
    let wrong = invalid_inner_pushdown(&mechanics, &hotels, &query);

    println!("correct answer: {} (mechanic, hotel) pairs", correct.len());
    println!(
        "invalid select-pushdown answer: {} pairs  <-- {}",
        wrong.len(),
        if pair_id_set(&wrong.rows) == pair_id_set(&correct.rows) {
            "coincidentally equal"
        } else {
            "WRONG (different result set)"
        }
    );
    assert_eq!(
        pair_id_set(&fast_counting.rows),
        pair_id_set(&correct.rows),
        "Counting must match the conceptual plan"
    );
    assert_eq!(
        pair_id_set(&fast_marking.rows),
        pair_id_set(&correct.rows),
        "Block-Marking must match the conceptual plan"
    );

    println!("\nwork comparison (neighborhood computations are the dominant cost):");
    println!(
        "  conceptual QEP : {:>8} neighborhoods, {:>9} points scanned",
        correct.metrics.neighborhoods_computed, correct.metrics.points_scanned
    );
    println!(
        "  Counting       : {:>8} neighborhoods, {:>9} points scanned ({} outer points pruned)",
        fast_counting.metrics.neighborhoods_computed,
        fast_counting.metrics.points_scanned,
        fast_counting.metrics.points_pruned
    );
    println!(
        "  Block-Marking  : {:>8} neighborhoods, {:>9} points scanned ({} blocks pruned)",
        fast_marking.metrics.neighborhoods_computed,
        fast_marking.metrics.points_scanned,
        fast_marking.metrics.blocks_pruned
    );

    let speedup = correct.metrics.neighborhoods_computed as f64
        / fast_marking.metrics.neighborhoods_computed.max(1) as f64;
    println!(
        "\nBlock-Marking does {speedup:.0}x fewer neighborhood computations than the conceptual QEP."
    );
}
