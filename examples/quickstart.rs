//! Quick start: build spatial indexes over synthetic city data and run each
//! of the five two-kNN-predicate query shapes once.
//!
//! Run with: `cargo run --release --example quickstart`

use two_knn::core::joins2::{
    chained_nested_cached, unchained_block_marking, ChainedJoinQuery, UnchainedJoinQuery,
};
use two_knn::core::select_join::{
    block_marking, select_on_outer_pushdown, SelectInnerJoinQuery, SelectOuterJoinQuery,
};
use two_knn::core::selects2::{two_knn_select, TwoSelectsQuery};
use two_knn::datagen::{berlinmod, BerlinModConfig};
use two_knn::{GridIndex, Point, SpatialIndex};

fn city_relation(n: usize, seed: u64) -> GridIndex {
    GridIndex::build_with_target_occupancy(berlinmod(&BerlinModConfig::with_points(n, seed)), 64)
        .expect("non-empty relation")
}

fn main() {
    println!("two-knn quickstart: five query shapes over a synthetic city\n");

    // Three relations over the same 100 km x 100 km city extent.
    let restaurants = city_relation(20_000, 1);
    let hotels = city_relation(15_000, 2);
    let parking = city_relation(10_000, 3);
    println!(
        "relations: restaurants={} pts/{} blocks, hotels={} pts, parking={} pts\n",
        restaurants.num_points(),
        restaurants.num_blocks(),
        hotels.num_points(),
        parking.num_points()
    );

    let city_center = Point::anonymous(50_000.0, 50_000.0);
    let office = Point::anonymous(47_500.0, 52_500.0);

    // 1. kNN-select on the inner relation of a kNN-join (Section 3).
    let q = SelectInnerJoinQuery::new(3, 8, city_center);
    let out = block_marking(&restaurants, &hotels, &q);
    println!(
        "1. restaurants ⋈ 3-nearest hotels, hotel among 8 closest to the city center:\n   {} pairs   [{}]",
        out.len(),
        out.metrics
    );

    // 2. kNN-select on the outer relation (pushdown is valid).
    let q = SelectOuterJoinQuery::new(3, 5, office);
    let out = select_on_outer_pushdown(&restaurants, &hotels, &q);
    println!(
        "2. 5 restaurants closest to the office ⋈ their 3 nearest hotels:\n   {} pairs   [{}]",
        out.len(),
        out.metrics
    );

    // 3. Two unchained kNN-joins: restaurants and parking both matched to hotels.
    let q = UnchainedJoinQuery::new(2, 2);
    let out = unchained_block_marking(&restaurants, &hotels, &parking, &q);
    println!(
        "3. (restaurants ⋈ hotels) ∩_hotel (parking ⋈ hotels):\n   {} triplets   [{}]",
        out.len(),
        out.metrics
    );

    // 4. Two chained kNN-joins: restaurant -> hotel -> parking.
    let q = ChainedJoinQuery::new(2, 2);
    let out = chained_nested_cached(&restaurants, &hotels, &parking, &q);
    println!(
        "4. restaurants ⋈ hotels ⋈ parking (chained, cached nested join):\n   {} triplets   [{}]",
        out.len(),
        out.metrics
    );

    // 5. Two kNN-selects over one relation.
    let q = TwoSelectsQuery::new(10, city_center, 200, office);
    let out = two_knn_select(&hotels, &q);
    println!(
        "5. hotels among the 10 closest to the center AND the 200 closest to the office:\n   {} hotels   [{}]",
        out.len(),
        out.metrics
    );

    // 6. The same machinery through the Database driver: EXPLAIN the
    //    decision chain for one query, run it, and report the metrics the
    //    session accumulated.
    let mut db = two_knn::core::plan::Database::new();
    db.register("Hotels", city_relation(15_000, 2));
    let text = "FIND (Hotels WHERE INSIDE(RECT(40000, 40000, 60000, 60000))) \
                WHERE KNN(8, 50000, 50000)";
    println!("\n6. EXPLAIN of a filtered kNN-select:");
    println!("{}", db.explain(text).expect("valid query"));
    let result = db.query(text).expect("valid query");
    println!("   -> executed: {} rows\n", result.num_rows());
    println!("metrics report:\n{}", db.metrics_report());
}
