//! Streaming updates over a moving-objects relation — the workload the
//! paper motivates (location-based services over vehicles) and the one the
//! versioned relation store exists for.
//!
//! A fleet of vehicles streams position reports into the database while
//! dispatch queries keep running: each query pins an immutable snapshot, so
//! readers never block on writers. When a relation's delta overlay outgrows
//! the compaction threshold, a background rebuild of the index is scheduled
//! on the shared worker pool and the fresh base is atomically published.
//!
//! The dispatch query also runs as a **standing query**
//! ([`Database::subscribe`]): instead of re-running it from scratch every
//! tick, the continuous-query maintainer probes each published batch
//! against the subscription's guard region, re-evaluates only when a
//! vehicle movement could actually change the answer, and emits the
//! changed rows as [`ResultDelta`]s — the streaming monitor below just
//! polls and prints them. One monitor is registered **textually**
//! ([`Database::subscribe_query`]): a `FIND … WHERE …` geofence watch
//! whose pre-kNN filter ranks only the vehicles inside the fence.
//!
//! The store runs **durably** ([`DurabilityConfig`]): every position batch
//! is write-ahead-logged before it publishes, compacted shard bases spill
//! to immutable block files, and the final act checkpoints, *drops* the
//! database, and [`Database::open`]s it again — the stream resumes exactly
//! where the "crash" left it.
//!
//! Run with: `cargo run --release --features parallel --example moving_objects`

use two_knn::core::plan::{Database, QuerySpec};
use two_knn::core::select_join::SelectInnerJoinQuery;
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::core::store::{DurabilityConfig, StoreConfig, SyncPolicy, WriteOp};
use two_knn::datagen::{berlinmod, BerlinModConfig};
use two_knn::{GridIndex, Point, SpatialIndex};

fn main() {
    // Vehicles move; repair stations don't. A small compaction threshold so
    // this example visibly triggers background rebuilds, and a durable store
    // under the system tmp dir so the fleet survives a restart.
    let dir = std::env::temp_dir().join(format!("twoknn-moving-objects-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig {
        compaction_threshold: 4_000,
        durability: DurabilityConfig::at(&dir).with_sync(SyncPolicy::EveryN(64)),
        ..StoreConfig::default()
    };
    let mut db = Database::with_store_config(config.clone());
    let vehicles = berlinmod(&BerlinModConfig::with_points(40_000, 21));
    db.register(
        "Vehicles",
        GridIndex::build_with_target_occupancy(vehicles.clone(), 64).unwrap(),
    );
    db.register(
        "Stations",
        GridIndex::build_with_target_occupancy(
            berlinmod(&BerlinModConfig::with_points(2_000, 22)),
            64,
        )
        .unwrap(),
    );

    // Dispatch query: for every repair station, its 2 nearest vehicles —
    // keeping only vehicles among the 32 closest to the accident hotspot.
    let hotspot = Point::anonymous(51_000.0, 48_500.0);
    let spec = QuerySpec::SelectInnerOfJoin {
        outer: "Stations".into(),
        inner: "Vehicles".into(),
        query: SelectInnerJoinQuery::new(2, 32, hotspot),
    };

    // Standing queries: the dispatch query itself, plus an accident-hotspot
    // monitor. Both are evaluated once here; afterwards the maintainer
    // re-evaluates them only when a published batch intersects their guard
    // regions (cq_reevals vs cq_skips below).
    let dispatch = db.subscribe(&spec, None).expect("subscribe dispatch");
    let monitor_spec = QuerySpec::TwoSelects {
        relation: "Vehicles".into(),
        query: TwoSelectsQuery::new(6, hotspot, 48, Point::anonymous(50_600.0, 48_900.0)),
    };
    let monitor = db
        .subscribe(&monitor_spec, None)
        .expect("subscribe monitor");
    let initial = db.poll(monitor).expect("initial monitor delta");

    // The declarative front-end drives the same machinery: a textual
    // geofence watch whose *pre*-kNN filter means the query ranks only the
    // vehicles inside the fence — "the 12 nearest *fenced* vehicles", not
    // "the 12 nearest, fenced afterwards".
    let geofence_text = "FIND (Vehicles WHERE INSIDE(RECT(45000, 43000, 57000, 54000))) \
                         WHERE KNN(12, 51000, 48500)";
    // EXPLAIN the geofence query before standing it up: the decision chain
    // shows the pre-kNN filter pushed below the kNN predicate.
    println!(
        "{}\n",
        db.explain(geofence_text).expect("explain geofence watch")
    );
    let geofence = db
        .subscribe_query(geofence_text)
        .expect("subscribe geofence watch");
    let fenced = db.poll(geofence).expect("initial geofence delta");
    println!(
        "standing queries registered: dispatch {dispatch}, hotspot monitor {monitor} \
         ({} vehicles initially on watch), textual geofence watch {geofence} \
         ({} fenced vehicles)\n",
        initial.iter().map(|d| d.added.len()).sum::<usize>(),
        fenced.iter().map(|d| d.added.len()).sum::<usize>(),
    );

    println!(
        "{} vehicles streaming positions, {} stations, compaction threshold {}\n",
        db.relation("Vehicles").unwrap().num_points(),
        db.relation("Stations").unwrap().num_points(),
        db.store().config().compaction_threshold,
    );
    println!(
        "{:>5} {:>10} {:>9} {:>12} {:>12} {:>8} {:>14} {:>12} {:>10}",
        "tick",
        "version",
        "delta",
        "compactions",
        "rows",
        "ms",
        "cq re/skip",
        "monitor Δ",
        "fence Δ"
    );

    // Ten ticks of the position stream: every tick, 1500 vehicles report a
    // new position (one atomic batch each) and dispatch re-runs its query.
    for tick in 1..=10u64 {
        let ops: Vec<WriteOp> = vehicles
            .iter()
            .filter(|p| (p.id + tick) % 27 == 0)
            .map(|p| {
                // A small deterministic drift per tick.
                let dx = ((p.id * 31 + tick * 7) % 400) as f64 - 200.0;
                let dy = ((p.id * 17 + tick * 13) % 400) as f64 - 200.0;
                WriteOp::Upsert(Point::new(p.id, p.x + dx, p.y + dy))
            })
            .collect();
        db.ingest("Vehicles", &ops).unwrap();

        let start = std::time::Instant::now();
        let result = db.execute(&spec).unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;

        // Drain this tick's maintenance, then poll the monitor's deltas —
        // the push-style view of the same data the query above recomputed.
        db.pool().wait_idle();
        let deltas = db.poll(monitor).unwrap();
        let (entered, left) = deltas.iter().fold((0usize, 0usize), |(a, r), d| {
            (a + d.added.len(), r + d.removed.len())
        });
        let fence_deltas = db.poll(geofence).unwrap();
        let (fence_in, fence_out) = fence_deltas.iter().fold((0usize, 0usize), |(a, r), d| {
            (a + d.added.len(), r + d.removed.len())
        });

        let snap = db.relation("Vehicles").unwrap();
        let m = db.store_metrics();
        println!(
            "{tick:>5} {:>10} {:>9} {:>12} {:>12} {:>8.1} {:>14} {:>12} {:>10}",
            snap.version(),
            snap.delta_len(),
            m.compactions,
            result.num_rows(),
            ms,
            format!("{}/{}", m.cq_reevals, m.cq_skips),
            format!("+{entered}/-{left}"),
            format!("+{fence_in}/-{fence_out}"),
        );
    }

    let (dispatch_rows, dispatch_version) = db.subscription_result(dispatch).unwrap();
    println!(
        "\ndispatch standing query: {} maintained rows at version {dispatch_version} \
         (no re-execution needed to read them)",
        dispatch_rows.len(),
    );

    // Drain whatever delta remains and show the final, fully compacted state.
    while db.relation("Vehicles").unwrap().delta_len() > 0 {
        db.compact_now("Vehicles").unwrap();
    }
    println!(
        "\nfinal: version {}, {} points",
        db.relation("Vehicles").unwrap().version(),
        db.relation("Vehicles").unwrap().num_points(),
    );
    println!("\nmetrics report:\n{}", db.metrics_report());
    let events = db.drain_events();
    println!("lifecycle events recorded this run: {}", events.len());
    for event in events.iter().rev().take(3).rev() {
        println!("  {event}");
    }

    // Save / restart / resume: checkpoint (spill dirty shards, trim the
    // WAL), then drop the Database — indistinguishable from a crash — and
    // recover it from the directory. The fleet, the stations, and the
    // dispatch answer all come back; the position stream just keeps going.
    db.checkpoint();
    let saved_points = db.relation("Vehicles").unwrap().num_points();
    let saved_rows = db.execute(&spec).unwrap().num_rows();
    let saved_fenced = db.query(geofence_text).unwrap().num_rows();
    drop(db);

    let db = Database::open(&dir, config).expect("recover the durable store");
    let recovered = db.relation("Vehicles").unwrap().num_points();
    let rows_after = db.execute(&spec).unwrap().num_rows();
    let fenced_after = db.query(geofence_text).unwrap().num_rows();
    assert_eq!(
        (recovered, rows_after, fenced_after),
        (saved_points, saved_rows, saved_fenced)
    );
    println!(
        "\nrestart: recovered {} relation(s), {recovered} vehicles, dispatch \
         answers {rows_after} rows and the geofence query {fenced_after} — \
         identical to before the shutdown",
        db.store_metrics().recoveries,
    );
    let resume: Vec<WriteOp> = vehicles
        .iter()
        .filter(|p| p.id % 27 == 0)
        .map(|p| WriteOp::Upsert(Point::new(p.id, p.x + 250.0, p.y - 250.0)))
        .collect();
    db.ingest("Vehicles", &resume).unwrap();
    println!(
        "resume: ingested {} position reports into the recovered store \
         (version {}, {} WAL records so far)",
        resume.len(),
        db.relation("Vehicles").unwrap().version(),
        db.store_metrics().wal_appends,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
