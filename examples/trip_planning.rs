//! Two kNN-join queries over three relations (Section 4): planning a trip
//! that combines attractions, restaurants and parking garages.
//!
//! * **Unchained** joins: "attractions with their 2 nearest restaurants, and
//!   parking garages with their 2 nearest restaurants — report (attraction,
//!   restaurant, parking) combinations that share the restaurant." Both joins
//!   target the restaurants relation; the paper shows they must be evaluated
//!   independently and intersected on the shared component, and that marking
//!   Candidate/Safe restaurant blocks prunes most of the second join.
//!
//! * **Chained** joins: "attractions with their 2 nearest restaurants, and
//!   for each such restaurant its 2 nearest parking garages." The nested QEP3
//!   with a neighborhood cache avoids expanding restaurants nobody visits.
//!
//! Run with: `cargo run --release --example trip_planning`

use two_knn::core::joins2::{
    chained_join_intersection, chained_nested, chained_nested_cached, chained_right_deep,
    choose_unchained_order, unchained_block_marking, unchained_conceptual, ChainedJoinQuery,
    JoinOrderDecision, UnchainedJoinQuery,
};
use two_knn::core::output::triplet_id_set;
use two_knn::datagen::{berlinmod, clustered, BerlinModConfig, ClusterConfig};
use two_knn::{GridIndex, Point, SpatialIndex};

fn main() {
    // Restaurants and parking cover the whole city (BerlinMOD-like);
    // attractions are clustered in a handful of touristic areas.
    let attractions = GridIndex::build_with_target_occupancy(
        clustered(&ClusterConfig {
            num_clusters: 4,
            points_per_cluster: 1_000,
            cluster_radius: 2_500.0,
            extent: two_knn::datagen::default_extent(),
            seed: 31,
        }),
        64,
    )
    .unwrap();
    let restaurants = GridIndex::build_with_target_occupancy(
        berlinmod(&BerlinModConfig::with_points(40_000, 32)),
        64,
    )
    .unwrap();
    let parking = GridIndex::build_with_target_occupancy(
        berlinmod(&BerlinModConfig::with_points(30_000, 33)),
        64,
    )
    .unwrap();

    println!(
        "attractions={} (clustered), restaurants={}, parking={}\n",
        attractions.num_points(),
        restaurants.num_points(),
        parking.num_points()
    );

    // ----- Unchained joins -------------------------------------------------
    let q = UnchainedJoinQuery::new(2, 2);
    let decision = choose_unchained_order(&attractions, &parking, 0.6);
    println!(
        "unchained join order heuristic (Section 4.1.2): {:?}",
        decision
    );
    assert_eq!(
        decision,
        JoinOrderDecision::StartWithA,
        "the clustered relation's join should go first"
    );

    let slow = unchained_conceptual(&attractions, &restaurants, &parking, &q);
    let fast = unchained_block_marking(&attractions, &restaurants, &parking, &q);
    assert_eq!(triplet_id_set(&slow.rows), triplet_id_set(&fast.rows));
    println!(
        "unchained: {} triplets; conceptual {} neighborhoods vs block-marking {} ({} parking blocks pruned)\n",
        fast.len(),
        slow.metrics.neighborhoods_computed,
        fast.metrics.neighborhoods_computed,
        fast.metrics.blocks_pruned
    );

    // ----- Chained joins ----------------------------------------------------
    let q = ChainedJoinQuery::new(2, 2);
    let p1 = chained_right_deep(&attractions, &restaurants, &parking, &q);
    let p2 = chained_join_intersection(&attractions, &restaurants, &parking, &q);
    let p3 = chained_nested(&attractions, &restaurants, &parking, &q);
    let p3c = chained_nested_cached(&attractions, &restaurants, &parking, &q);
    assert_eq!(triplet_id_set(&p1.rows), triplet_id_set(&p2.rows));
    assert_eq!(triplet_id_set(&p2.rows), triplet_id_set(&p3.rows));
    assert_eq!(triplet_id_set(&p3.rows), triplet_id_set(&p3c.rows));

    println!(
        "chained: {} triplets; neighborhoods computed per plan:",
        p3c.len()
    );
    println!(
        "  QEP1 right-deep          : {:>8}",
        p1.metrics.neighborhoods_computed
    );
    println!(
        "  QEP2 join-intersection   : {:>8}",
        p2.metrics.neighborhoods_computed
    );
    println!(
        "  QEP3 nested (no cache)   : {:>8}",
        p3.metrics.neighborhoods_computed
    );
    println!(
        "  QEP3 nested + cache      : {:>8}   ({} cache hits)",
        p3c.metrics.neighborhoods_computed, p3c.metrics.cache_hits
    );

    // An anonymous inline use of Point to show coordinates of one result.
    if let Some(t) = p3c.rows.first() {
        let a: Point = t.a;
        println!(
            "\nexample itinerary: attraction ({:.0},{:.0}) -> restaurant ({:.0},{:.0}) -> parking ({:.0},{:.0})",
            a.x, a.y, t.b.x, t.b.y, t.c.x, t.c.y
        );
    }
}
