//! The paper's two-kNN-select scenario (Section 5): a person moving to a new
//! city wants candidate houses that are among the k closest to their new
//! workplace **and** among the k closest to their children's school.
//!
//! This example shows that evaluating the two selects one after the other
//! produces wrong answers (Figures 14–15), and how the 2-kNN-select algorithm
//! (Procedure 5) avoids the cost of the larger-k predicate when the two k
//! values differ.
//!
//! Run with: `cargo run --release --example house_hunting`

use two_knn::core::output::point_id_set;
use two_knn::core::selects2::{
    two_knn_select, two_selects_conceptual, two_selects_wrong_sequential, TwoSelectsQuery,
};
use two_knn::datagen::{berlinmod, BerlinModConfig};
use two_knn::{GridIndex, Point, SpatialIndex};

fn main() {
    let houses = GridIndex::build_with_target_occupancy(
        berlinmod(&BerlinModConfig::with_points(100_000, 21)),
        64,
    )
    .unwrap();
    // Work and school sit in the same (sparser, suburban) part of town, a
    // couple of kilometers apart — the setting where bounding the larger
    // predicate's locality pays off most.
    let work = Point::anonymous(30_000.0, 68_000.0);
    let school = Point::anonymous(31_500.0, 68_800.0);
    println!(
        "houses: {} points; work at ({:.0},{:.0}); school at ({:.0},{:.0})\n",
        houses.num_points(),
        work.x,
        work.y,
        school.x,
        school.y
    );

    // Equal k: the scenario from the paper's example (5 and 5).
    let q = TwoSelectsQuery::new(5, work, 5, school);
    let correct = two_selects_conceptual(&houses, &q);
    let wrong_work_first = two_selects_wrong_sequential(&houses, &q, true);
    let wrong_school_first = two_selects_wrong_sequential(&houses, &q, false);
    println!("k_work = k_school = 5:");
    println!("  correct intersection       : {} houses", correct.len());
    println!(
        "  work-select evaluated first : {} houses ({})",
        wrong_work_first.len(),
        if point_id_set(&wrong_work_first.rows) == point_id_set(&correct.rows) {
            "same by coincidence"
        } else {
            "WRONG"
        }
    );
    println!(
        "  school-select evaluated first: {} houses ({})",
        wrong_school_first.len(),
        if point_id_set(&wrong_school_first.rows) == point_id_set(&correct.rows) {
            "same by coincidence"
        } else {
            "WRONG"
        }
    );

    // Unequal k: where the 2-kNN-select algorithm shines.
    println!("\nk_work = 10 fixed, increasing k_school (the paper's Figure 26 setup):");
    println!(
        "{:>10} {:>22} {:>22}",
        "k_school", "conceptual pts scanned", "2-kNN-select pts scanned"
    );
    for exp in 0..=8 {
        let k_school = 10usize << exp;
        let q = TwoSelectsQuery::new(10, work, k_school, school);
        let slow = two_selects_conceptual(&houses, &q);
        let fast = two_knn_select(&houses, &q);
        assert_eq!(
            point_id_set(&slow.rows),
            point_id_set(&fast.rows),
            "2-kNN-select must match the conceptual plan"
        );
        println!(
            "{:>10} {:>22} {:>22}",
            k_school, slow.metrics.points_scanned, fast.metrics.points_scanned
        );
    }
    println!("\nThe 2-kNN-select cost stays flat because the larger predicate's locality is\nbounded by the smaller predicate's neighborhood (Procedure 5).");
}
