//! Using the plan layer: a relation catalog, logical-plan validation (which
//! rewrites are legal), statistics-driven strategy selection, and execution.
//!
//! Run with: `cargo run --release --example plan_optimizer`

use two_knn::core::joins2::UnchainedJoinQuery;
use two_knn::core::plan::{Database, LogicalExpr, QuerySpec, Rewrite, Strategy};
use two_knn::core::select_join::SelectInnerJoinQuery;
use two_knn::core::selects2::TwoSelectsQuery;
use two_knn::datagen::{berlinmod, clustered, BerlinModConfig, ClusterConfig};
use two_knn::{GridIndex, Point};

fn main() {
    // ----- 1. Logical-plan validation ---------------------------------------
    println!("== logical-plan validation ==");
    let shopping_center = Point::anonymous(52_000.0, 49_000.0);

    // The correct composite: join intersected with the select's result.
    let correct = LogicalExpr::relation("Mechanics")
        .knn_join(LogicalExpr::relation("Hotels"), 2)
        .intersect_on_inner(LogicalExpr::relation("Hotels").knn_select(2, shopping_center));
    println!(
        "correct composite validates: {:?}",
        correct.validate().is_ok()
    );

    // The classical pushdown: select below the join's inner relation.
    let pushed = LogicalExpr::relation("Mechanics").knn_join(
        LogicalExpr::relation("Hotels").knn_select(2, shopping_center),
        2,
    );
    match pushed.validate() {
        Err(e) => println!("inner pushdown rejected: {e}"),
        Ok(()) => unreachable!("the validator must reject the inner pushdown"),
    }

    // Rewrites: the validator also answers "may I apply this transformation?"
    let outer_pushed = LogicalExpr::relation("Mechanics")
        .knn_select(5, shopping_center)
        .knn_join(LogicalExpr::relation("Hotels"), 2);
    println!(
        "outer-select pushdown allowed: {:?}",
        outer_pushed
            .apply(Rewrite::PushSelectBelowJoinOuter)
            .is_ok()
    );
    println!(
        "sequentializing two selects allowed: {:?}\n",
        outer_pushed.apply(Rewrite::SequentializeTwoSelects).is_ok()
    );

    // ----- 2. Statistics-driven strategy selection ---------------------------
    println!("== optimizer ==");
    let mut db = Database::new();
    db.register(
        "Mechanics",
        GridIndex::build_with_target_occupancy(
            berlinmod(&BerlinModConfig::with_points(60_000, 41)),
            64,
        )
        .unwrap(),
    );
    db.register(
        "Hotels",
        GridIndex::build_with_target_occupancy(
            berlinmod(&BerlinModConfig::with_points(20_000, 42)),
            64,
        )
        .unwrap(),
    );
    db.register(
        "Attractions",
        GridIndex::build_with_target_occupancy(
            clustered(&ClusterConfig {
                num_clusters: 3,
                points_per_cluster: 2_000,
                cluster_radius: 2_000.0,
                extent: two_knn::datagen::default_extent(),
                seed: 43,
            }),
            64,
        )
        .unwrap(),
    );

    for name in ["Mechanics", "Hotels", "Attractions"] {
        println!("profile[{name}]: {}", db.profile(name).unwrap());
    }

    let select_inner = QuerySpec::SelectInnerOfJoin {
        outer: "Mechanics".into(),
        inner: "Hotels".into(),
        query: SelectInnerJoinQuery::new(2, 2, shopping_center),
    };
    let unchained = QuerySpec::UnchainedJoins {
        a: "Attractions".into(),
        b: "Hotels".into(),
        c: "Mechanics".into(),
        query: UnchainedJoinQuery::new(2, 2),
    };
    let two_selects = QuerySpec::TwoSelects {
        relation: "Hotels".into(),
        query: TwoSelectsQuery::new(
            10,
            shopping_center,
            640,
            Point::anonymous(47_000.0, 51_000.0),
        ),
    };

    for (label, spec) in [
        ("select-inner-of-join", &select_inner),
        ("unchained-joins", &unchained),
        ("two-selects", &two_selects),
    ] {
        let strategy: Strategy = db.plan(spec).unwrap();
        let result = db.execute(spec).unwrap();
        println!(
            "{label:>22}: strategy = {strategy}, rows = {}, work = {}",
            result.num_rows(),
            result.metrics()
        );
    }
}
